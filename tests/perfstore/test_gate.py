"""The statistical regression gate over run *sets* (acceptance bar)."""

import pytest

from repro.perfstore.gate import gate_manifests, render_gate_report

from .conftest import make_manifest

#: +-3% jitter shapes, matching scripts/check_bench_regression.py.
BASE_JITTER = (0.97, 1.00, 1.03)
RERUN_JITTER = (0.98, 1.01, 1.02)


def jittered(factor, jitter=BASE_JITTER, **kwargs):
    """Three runs of the same shape, walls scaled by ``factor``."""
    return [
        make_manifest(
            total=2.0 * factor * j,
            stages=(("stratify", 1.2 * factor * j), ("select", 0.8 * factor * j)),
            **kwargs,
        )
        for j in jitter
    ]


def test_2x_slowdown_over_3_runs_regresses():
    report = gate_manifests(jittered(1.0), jittered(2.0, RERUN_JITTER))
    assert report.regressed
    assert report.verdict == "regressed"
    failed = {(row.kind, row.name) for row in report.failures}
    assert ("total-wall", "total") in failed
    assert ("stage-wall", "stratify") in failed
    assert ("stage-wall", "select") in failed
    total = next(r for r in report.rows if r.kind == "total-wall")
    assert total.mode == "rank"
    assert total.p_slower == pytest.approx(0.05)


def test_same_distribution_reruns_pass():
    report = gate_manifests(jittered(1.0), jittered(1.0, RERUN_JITTER))
    assert not report.regressed
    assert report.verdict == "indistinguishable"
    assert all(row.mode == "rank" for row in report.rows)


def test_removed_stage_fails_and_new_stage_informs():
    baseline = [
        make_manifest(total=2.0 * j, stages=(("old", 2.0 * j),))
        for j in BASE_JITTER
    ]
    current = [
        make_manifest(total=2.0 * j, stages=(("fresh", 2.0 * j),))
        for j in RERUN_JITTER
    ]
    report = gate_manifests(baseline, current)
    rows = {row.kind: row for row in report.rows}
    assert rows["stage-removed"].failed
    assert rows["stage-removed"].verdict == "removed"
    assert not rows["stage-new"].failed
    assert rows["stage-new"].verdict == "new"
    assert report.regressed


def test_removed_trivial_stage_is_only_informational():
    baseline = [
        make_manifest(total=2.0 * j, stages=(("main", 2.0 * j), ("blip", 0.001)))
        for j in BASE_JITTER
    ]
    current = [
        make_manifest(total=2.0 * j, stages=(("main", 2.0 * j),))
        for j in RERUN_JITTER
    ]
    report = gate_manifests(baseline, current)
    removed = next(r for r in report.rows if r.kind == "stage-removed")
    assert not removed.failed
    assert not report.regressed


def test_accuracy_uses_tighter_floor_than_wall_metrics():
    # A 5% error increase is far below the 10% wall floor but far above
    # the 1% accuracy floor: the pipeline is seed-deterministic, so a
    # systematic shift of this size is algorithmic drift.
    baseline = [
        make_manifest(workloads=[{"workload": "w", "sieve_error": 0.0100 + i * 1e-5}])
        for i in range(3)
    ]
    current = [
        make_manifest(workloads=[{"workload": "w", "sieve_error": 0.0105 + i * 1e-5}])
        for i in range(3)
    ]
    report = gate_manifests(baseline, current)
    accuracy = next(r for r in report.rows if r.kind == "accuracy")
    assert accuracy.name == "w.sieve_error"
    assert accuracy.failed and accuracy.verdict == "regressed"


def test_removed_metric_and_workload_fail_new_ones_inform():
    baseline = [
        make_manifest(
            workloads=[
                {"workload": "w", "sieve_error": 0.01, "pks_error": 0.02},
                {"workload": "gone", "sieve_error": 0.01},
            ]
        )
        for _ in range(2)
    ]
    current = [
        make_manifest(
            workloads=[
                {"workload": "w", "sieve_error": 0.01, "random_error": 0.09},
                {"workload": "fresh", "sieve_error": 0.01},
            ]
        )
        for _ in range(2)
    ]
    report = gate_manifests(baseline, current)
    by_name = {(row.kind, row.name): row for row in report.rows}
    assert by_name[("accuracy", "w.pks_error")].failed  # metric vanished
    assert not by_name[("accuracy", "w.random_error")].failed  # new metric
    assert by_name[("workload-removed", "gone")].failed
    assert not by_name[("workload-new", "fresh")].failed


def test_aggregate_regression_and_removal():
    baseline = [
        make_manifest(aggregates={"sieve_avg": 0.010, "old_key": 1.0})
        for _ in range(3)
    ]
    current = [make_manifest(aggregates={"sieve_avg": 0.012}) for _ in range(3)]
    report = gate_manifests(baseline, current)
    by_name = {(row.kind, row.name): row for row in report.rows}
    assert by_name[("aggregate", "sieve_avg")].verdict == "regressed"
    assert by_name[("aggregate", "old_key")].verdict == "removed"
    assert by_name[("aggregate", "old_key")].failed


def test_single_runs_fall_back_to_labeled_heuristic():
    report = gate_manifests(jittered(1.0)[:1], jittered(2.0)[:1])
    assert report.regressed
    assert all(
        row.mode == "single-sample"
        for row in report.rows
        if row.kind in ("total-wall", "stage-wall")
    )


def test_report_round_trips_to_dict():
    report = gate_manifests(
        jittered(1.0), jittered(2.0, RERUN_JITTER), figure="fig3",
        baseline_label="abc123", current_label="def456",
    )
    payload = report.to_dict()
    assert payload["verdict"] == "regressed"
    assert payload["figure"] == "fig3"
    assert payload["n_baseline"] == payload["n_current"] == 3
    total = next(r for r in payload["rows"] if r["kind"] == "total-wall")
    assert total["baseline"]["n"] == 3
    assert total["baseline"]["ci_low"] <= total["baseline"]["ci_high"]


def test_render_folds_indistinguishable_rows():
    clean = gate_manifests(jittered(1.0), jittered(1.0, RERUN_JITTER))
    text = render_gate_report(clean)
    assert "statistically indistinguishable" in text
    assert "verdict: INDISTINGUISHABLE" in text
    assert "stage-wall" not in text  # folded away

    verbose = render_gate_report(clean, verbose=True)
    assert "stratify" in verbose and "CI[" in verbose

    bad = gate_manifests(jittered(1.0), jittered(2.0, RERUN_JITTER))
    text = render_gate_report(bad)
    assert "FAIL" in text and "verdict: REGRESSED" in text


def test_empty_run_sets_rejected():
    with pytest.raises(ValueError):
        gate_manifests([], jittered(1.0))
    with pytest.raises(ValueError):
        gate_manifests(jittered(1.0), [])
