"""Store layer: content addressing, append-only logs, resolution, hooks.

Hypothesis pins the two structural invariants the gate depends on:
manifests round-trip byte-identically through the object store, and the
set of stored runs is invariant under ingestion order.
"""

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.observability import metrics
from repro.observability.export import parse_prometheus, prometheus_text
from repro.perfstore.store import (
    STORE_DIR_ENV,
    VERSION_ENV,
    PerfStore,
    config_fingerprint,
    current_version,
    figure_from_command,
    maybe_attach,
    maybe_record,
    register_metrics,
    store_from_env,
)
from repro.utils.errors import PerfStoreError

from .conftest import make_manifest


def test_ingest_round_trips_byte_identically(tmp_path):
    store = PerfStore(tmp_path)
    manifest = make_manifest(total=1.23)
    receipt = store.ingest(manifest, version="v1")
    assert receipt.stored_object and receipt.seq == 1
    assert receipt.figure == "fig3"  # derived from "bench fig3"
    restored = store.load_object(receipt.object_id)
    assert restored == manifest
    assert restored.to_json() == manifest.to_json()


def test_reingest_deduplicates_object_but_grows_the_log(tmp_path):
    store = PerfStore(tmp_path)
    manifest = make_manifest()
    first = store.ingest(manifest, version="v1")
    second = store.ingest(manifest, version="v1")
    assert first.object_id == second.object_id
    assert not second.stored_object
    assert second.seq == 2
    runs = store.runs("v1", "fig3")
    assert [run.seq for run in runs] == [1, 2]
    objects = list((tmp_path / "objects").rglob("*.json"))
    assert len(objects) == 1


@settings(
    deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture]
)
@given(
    totals=st.lists(
        st.floats(min_value=0.01, max_value=100, allow_nan=False),
        min_size=1,
        max_size=5,
        unique=True,
    ),
    seed=st.integers(0, 2**16),
)
def test_ingestion_is_order_invariant(tmp_path_factory, totals, seed):
    manifests = [make_manifest(total=t) for t in totals]
    shuffled = list(manifests)
    random.Random(seed).shuffle(shuffled)
    root = tmp_path_factory.mktemp("order")
    a, b = PerfStore(root / "a"), PerfStore(root / "b")
    for m in manifests:
        a.ingest(m, version="v1")
    for m in shuffled:
        b.ingest(m, version="v1")
    ids_a = {run.object_id for run in a.runs("v1", "fig3")}
    ids_b = {run.object_id for run in b.runs("v1", "fig3")}
    assert ids_a == ids_b and len(ids_a) == len(totals)
    assert a.summary() == b.summary()


def test_versions_keep_first_ingest_order(tmp_path):
    store = PerfStore(tmp_path)
    for version in ("c3", "a1", "b2", "a1"):
        store.ingest(make_manifest(), version=version)
    assert store.versions() == ["c3", "a1", "b2"]
    assert store.latest_version() == "b2"
    store.ingest(make_manifest(command="bench scale"), version="a1")
    assert store.latest_version("scale") == "a1"
    assert store.figures("a1") == ["fig3", "scale"]


def test_summary_counts_runs_per_figure(tmp_path):
    store = PerfStore(tmp_path)
    store.ingest(make_manifest(), version="v1")
    store.ingest(make_manifest(total=2.0), version="v1")
    store.ingest(make_manifest(command="bench scale"), version="v1")
    assert store.summary() == {"v1": {"fig3": 2, "scale": 1}}


def test_resolve_exact_prefix_ambiguous_unknown(tmp_path):
    store = PerfStore(tmp_path)
    for version in ("abcdef123456", "abc999", "zzz111"):
        store.ingest(make_manifest(), version=version)
    assert store.resolve("zzz111") == "zzz111"
    assert store.resolve("zzz") == "zzz111"  # unique prefix
    with pytest.raises(PerfStoreError, match="ambiguous"):
        store.resolve("abc")
    with pytest.raises(PerfStoreError, match="no stored profile"):
        store.resolve("nope")


def test_resolve_symbolic_rev_through_git(tmp_path):
    # The test process runs inside the repo checkout, so HEAD resolves;
    # ingest under the resolved SHA and ask for the symbolic name.
    store = PerfStore(tmp_path)
    import subprocess

    head = subprocess.run(
        ["git", "rev-parse", "HEAD"], capture_output=True, text=True, check=True
    ).stdout.strip()
    store.ingest(make_manifest(), version=head)
    assert store.resolve("HEAD") == head


def test_slash_in_version_or_figure_rejected(tmp_path):
    store = PerfStore(tmp_path)
    with pytest.raises(PerfStoreError):
        store.ingest(make_manifest(), version="a/b")
    with pytest.raises(PerfStoreError):
        store.ingest(make_manifest(), figure="fig/3", version="v1")


def test_index_corruption_raises_perfstore_error(tmp_path):
    store = PerfStore(tmp_path)
    store.ingest(make_manifest(), version="v1")
    store.index_path.write_text("{broken")
    with pytest.raises(PerfStoreError, match="unreadable"):
        store.versions()
    store.index_path.write_text(json.dumps({"schema": 999, "versions": {}}))
    with pytest.raises(PerfStoreError, match="schema"):
        store.versions()


def test_attachments_round_trip_with_sanitized_names(tmp_path):
    store = PerfStore(tmp_path)
    payload = {"seed": "s", "findings": [1, 2]}
    path = store.attach("fuzz-findings", "weird name!", payload, version="v1")
    assert path.name == "weird-name-.json"
    assert store.attachments("v1", "fuzz-findings") == {"weird-name-": payload}
    assert store.attachments("v1", "other") == {}


def test_figure_from_command_cases():
    assert figure_from_command("bench fig3") == "fig3"
    assert figure_from_command("sieve-repro fig10") == "fig10"
    assert figure_from_command("bench scale") == "scale"
    assert figure_from_command("bench streaming") == "streaming"
    assert figure_from_command("Weird Command!") == "weird-command"
    assert figure_from_command("") == "unknown"


def test_config_fingerprint_depends_on_figure_and_config():
    base = config_fingerprint("fig3", {"cap": 400})
    assert config_fingerprint("fig3", {"cap": 400}) == base
    assert config_fingerprint("fig4", {"cap": 400}) != base
    assert config_fingerprint("fig3", {"cap": 800}) != base
    assert len(base) == 16


def test_current_version_env_override(monkeypatch):
    monkeypatch.setenv(VERSION_ENV, "ci-override")
    assert current_version() == "ci-override"


def test_store_from_env(tmp_path, monkeypatch):
    monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "env-store"))
    assert store_from_env().root == tmp_path / "env-store"
    monkeypatch.delenv(STORE_DIR_ENV)
    assert store_from_env(tmp_path / "fallback").root == tmp_path / "fallback"


def test_maybe_record_is_env_gated(tmp_path, monkeypatch):
    monkeypatch.delenv(STORE_DIR_ENV, raising=False)
    assert maybe_record(make_manifest()) is None

    monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "auto"))
    monkeypatch.setenv(VERSION_ENV, "v1")
    receipt = maybe_record(make_manifest(), figure="fig3")
    assert receipt is not None and receipt.seq == 1
    assert PerfStore(tmp_path / "auto").runs("v1", "fig3")


def test_maybe_record_failure_degrades_to_diagnostic(tmp_path, monkeypatch):
    # Point the store at a *file*: every write fails, but the hook must
    # swallow the error — telemetry never kills a measured run.
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("x")
    monkeypatch.setenv(STORE_DIR_ENV, str(blocker))
    monkeypatch.setenv(VERSION_ENV, "v1")
    assert maybe_record(make_manifest()) is None
    assert maybe_attach("kind", "name", {"k": 1}) is None


def test_register_metrics_surfaces_zeroed_families():
    register_metrics()
    families = parse_prometheus(prometheus_text(metrics.get_registry().snapshot()))
    for family in (
        "perfstore_ingest_total",
        "perfstore_lookup_total",
        "perfstore_gate_total",
    ):
        assert family in families
    verdicts = {
        labels.get("verdict")
        for _, labels, _ in families["perfstore_gate_total"]["samples"]
    }
    assert verdicts == {"regressed", "improved", "indistinguishable"}


def test_ingest_and_lookup_bump_counters(tmp_path):
    store = PerfStore(tmp_path)
    store.ingest(make_manifest(), version="v1")
    store.runs("v1", "fig3")
    store.runs("v1", "fig9")  # nothing stored for fig9
    counters = metrics.get_registry().counters
    assert counters["perfstore.ingest{figure=fig3}"] == 1
    assert counters["perfstore.lookup{result=hit}"] == 1
    assert counters["perfstore.lookup{result=miss}"] == 1
