"""Shared fixtures for the perfstore tests."""

import pytest

from repro.observability import metrics
from repro.observability.manifest import RunManifest, StageStat


@pytest.fixture(autouse=True)
def _clean_metrics():
    metrics.get_registry().reset()
    yield
    metrics.get_registry().reset()


def make_manifest(
    total=1.0,
    stages=(("stratify", 0.6), ("select", 0.4)),
    workloads=(),
    aggregates=None,
    config=None,
    command="bench fig3",
    created="2026-01-01T00:00:00+00:00",
):
    """A synthetic RunManifest for store/gate tests."""
    return RunManifest(
        command=command,
        created=created,
        config=dict(config or {"cap": 400, "jobs": 1}),
        total_wall_s=total,
        stages=tuple(
            StageStat(name=n, count=1, wall_s=w, self_s=w, cpu_s=w)
            for n, w in stages
        ),
        workloads=tuple(workloads),
        aggregates=dict(aggregates or {}),
    )
