"""One-command promotion of fuzz findings into the adversarial suite.

Runs one real (tiny) campaign per module, then exercises promotion
against a scratch catalog: provenance, live re-pinned errors, idempotent
re-promotion and the dynamically loaded suite.
"""

import pytest

from repro.evaluation.engine import EngineConfig, EvaluationEngine
from repro.fuzz.campaign import FuzzConfig, run_campaign
from repro.perfstore.promote import promote_findings, render_promotion
from repro.perfstore.store import STORE_DIR_ENV, VERSION_ENV, PerfStore
from repro.workloads import adversarial


@pytest.fixture(scope="module")
def engine(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("promote-engine")
    engine = EvaluationEngine(
        EngineConfig(
            jobs=1,
            cache_dir=tmp / "cache",
            quarantine_path=tmp / "quarantine.json",
        )
    )
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def findings_path(tmp_path_factory, engine):
    out = tmp_path_factory.mktemp("campaign")
    result = run_campaign(
        FuzzConfig(
            seed="pytest-promote",
            budget=3,
            methods=("sieve",),
            max_invocations=400,
            threshold=0.0,  # every scored candidate is a finding
            top_k=1,
            shrink_steps=2,
            out_dir=out,
        ),
        engine=engine,
    )
    assert result.findings_path is not None
    return result.findings_path


def test_promotion_appends_entry_with_provenance(
    findings_path, engine, tmp_path, monkeypatch
):
    catalog = tmp_path / "promoted.json"
    promoted = promote_findings(findings_path, engine=engine, catalog_path=catalog)
    assert len(promoted) == 1
    entry = promoted[0]
    assert entry.spec.suite == "adversarial"
    assert entry.campaign and entry.source_index >= 0
    assert "pytest-promote" in entry.note and "Repro:" in entry.note
    assert set(entry.expected_errors) == {"sieve"}  # re-pinned live
    assert entry.expected_errors["sieve"] >= 0.0

    # The catalog round-trips and the dynamic suite picks it up.
    loaded = adversarial.load_promoted_entries(catalog)
    assert [e.label for e in loaded] == [entry.label]
    monkeypatch.setenv(adversarial.PROMOTED_ENV, str(catalog))
    labels = {e.label for e in adversarial.ADVERSARIAL_ENTRIES}
    assert entry.label in labels
    assert len(adversarial.ADVERSARIAL_ENTRIES) == len(adversarial._STATIC_ENTRIES) + 1

    text = render_promotion(promoted)
    assert "promoted 1 finding(s)" in text and entry.label in text


def test_repromotion_is_idempotent(findings_path, engine, tmp_path):
    catalog = tmp_path / "promoted.json"
    first = promote_findings(findings_path, engine=engine, catalog_path=catalog)
    assert len(first) == 1
    again = promote_findings(findings_path, engine=engine, catalog_path=catalog)
    assert again == []
    assert "no new findings" in render_promotion(again)
    assert len(adversarial.load_promoted_entries(catalog)) == 1


def test_min_score_filters_everything(findings_path, engine, tmp_path):
    catalog = tmp_path / "promoted.json"
    promoted = promote_findings(
        findings_path, engine=engine, catalog_path=catalog, min_score=1e9
    )
    assert promoted == []
    assert not catalog.exists()  # nothing written for an empty promotion


def test_promotion_registers_in_perfstore(
    findings_path, engine, tmp_path, monkeypatch
):
    monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "store"))
    monkeypatch.setenv(VERSION_ENV, "vtest")
    promote_findings(
        findings_path, engine=engine, catalog_path=tmp_path / "promoted.json"
    )
    attachments = PerfStore(tmp_path / "store").attachments("vtest", "promotion")
    assert len(attachments) == 1
    (payload,) = attachments.values()
    assert payload["promoted"] and payload["campaign"]["seed"] == "pytest-promote"


def test_promoted_entry_reproduces_through_verify_suite(
    findings_path, engine, tmp_path, monkeypatch
):
    catalog = tmp_path / "promoted.json"
    promote_findings(findings_path, engine=engine, catalog_path=catalog)
    monkeypatch.setenv(adversarial.PROMOTED_ENV, str(catalog))
    rows = adversarial.verify_suite(engine=engine)
    assert all(row["ok"] for row in rows)
    assert len(rows) >= len(adversarial._STATIC_ENTRIES) + 1
