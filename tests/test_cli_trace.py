"""CLI trace/simulate workflow (Section V-G) end to end."""

from repro.cli import main


def test_trace_then_simulate_round_trip(tmp_path, capsys):
    out = tmp_path / "traces"
    assert main([
        "--cap", "800", "trace", "cactus/gru", "--out", str(out),
        "--limit", "3", "--max-warps", "4", "--max-insns", "64",
    ]) == 0
    written = sorted(out.glob("*.trace"))
    assert len(written) == 3
    capsys.readouterr()

    assert main(["simulate", str(out)]) == 0
    report = capsys.readouterr().out
    for path in written:
        assert path.name in report
    assert "cycles" in report and "ipc" in report


def test_simulate_empty_directory(tmp_path, capsys):
    assert main(["simulate", str(tmp_path)]) == 0
    assert "no .trace files" in capsys.readouterr().out
