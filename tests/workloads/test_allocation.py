"""Tests for integer allocation helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.allocation import assign_tiers, largest_remainder


class TestLargestRemainder:
    def test_exact_total(self):
        counts = largest_remainder(np.array([1.0, 2.0, 3.0]), 100)
        assert counts.sum() == 100

    def test_proportionality(self):
        counts = largest_remainder(np.array([1.0, 3.0]), 400, minimum=0)
        assert counts.tolist() == [100, 300]

    def test_minimum_respected(self):
        counts = largest_remainder(np.array([1e-9, 1.0]), 10, minimum=1)
        assert counts.min() >= 1
        assert counts.sum() == 10

    def test_total_too_small_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder(np.array([1.0, 1.0, 1.0]), 2, minimum=1)

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder(np.zeros(3), 10)

    def test_deterministic_tie_break(self):
        weights = np.ones(7)
        a = largest_remainder(weights, 10)
        b = largest_remainder(weights, 10)
        assert np.array_equal(a, b)

    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=40
        ),
        extra=st.integers(min_value=0, max_value=10_000),
    )
    def test_always_exact_and_within_one_of_proportional(self, weights, extra):
        weights = np.array(weights)
        total = len(weights) + extra
        counts = largest_remainder(weights, total, minimum=1)
        assert counts.sum() == total
        assert counts.min() >= 1
        shares = weights / weights.sum() * (total - len(weights))
        assert np.all(np.abs(counts - 1 - shares) <= 1.0 + 1e-9)


class TestAssignTiers:
    def test_all_one_tier(self):
        counts = np.array([10, 20, 30])
        tiers = assign_tiers(counts, (1.0, 0.0, 0.0), np.arange(3))
        assert tiers.tolist() == [0, 0, 0]

    def test_invocation_mass_tracks_fractions(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(50, 500, size=40)
        tiers = assign_tiers(counts, (0.5, 0.3, 0.2), rng.permutation(40))
        total = counts.sum()
        for tier, target in enumerate((0.5, 0.3, 0.2)):
            mass = counts[tiers == tier].sum() / total
            assert abs(mass - target) < 0.15

    def test_every_kernel_assigned(self):
        counts = np.array([5, 5, 5, 5])
        tiers = assign_tiers(counts, (0.4, 0.4, 0.2), np.array([3, 1, 0, 2]))
        assert set(tiers.tolist()) <= {0, 1, 2}
        assert len(tiers) == 4
