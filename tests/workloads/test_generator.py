"""Tests for the synthetic workload generator."""

import numpy as np
import pytest

from repro.utils.stats import coefficient_of_variation
from repro.workloads.generator import MIN_VARIABLE_KERNEL_CTAS, generate
from repro.workloads.spec import Tier
from tests.conftest import make_spec


def test_exact_kernel_and_invocation_counts(toy_spec, toy_run):
    assert len(toy_run.kernels) == toy_spec.num_kernels
    assert toy_run.num_invocations == toy_spec.num_invocations


def test_generation_is_deterministic(toy_spec, toy_run):
    again = generate(toy_spec)
    for a, b in zip(toy_run.kernels, again.kernels):
        assert a.traits == b.traits
        assert np.array_equal(a.batch.insn_count, b.batch.insn_count)
        assert np.array_equal(a.batch.chrono_index, b.batch.chrono_index)


def test_chronology_is_a_global_permutation(toy_run):
    chrono = np.concatenate([k.batch.chrono_index for k in toy_run.kernels])
    assert sorted(chrono.tolist()) == list(range(toy_run.num_invocations))


def test_within_kernel_chronology_is_increasing(toy_run):
    for kernel in toy_run.kernels:
        assert np.all(np.diff(kernel.batch.chrono_index) > 0)


def test_tier1_kernels_have_constant_instruction_counts(toy_run):
    tier1 = [k for k in toy_run.kernels if k.intended_tier is Tier.TIER1]
    assert tier1, "toy spec should produce Tier-1 kernels"
    for kernel in tier1:
        assert len(np.unique(kernel.batch.insn_count)) == 1


def test_tier1_kernels_use_a_single_cta_size(toy_run):
    for kernel in toy_run.kernels:
        if kernel.intended_tier is Tier.TIER1:
            assert len(np.unique(kernel.batch.cta_size)) == 1


def test_tier2_kernels_have_low_variability(toy_run):
    for kernel in toy_run.kernels:
        if kernel.intended_tier is Tier.TIER2 and len(kernel) > 10:
            cov = coefficient_of_variation(kernel.batch.insn_count)
            assert 0 < cov < 0.5


def test_tier3_kernels_have_high_variability(toy_run):
    tier3 = [
        k
        for k in toy_run.kernels
        if k.intended_tier is Tier.TIER3 and len(k) > 20
    ]
    assert tier3, "toy spec should produce populated Tier-3 kernels"
    for kernel in tier3:
        assert coefficient_of_variation(kernel.batch.insn_count) > 0.4


def test_size_correlation_orders_invocations():
    spec = make_spec(name="ramped", chrono_size_correlation=1.0,
                     tier_fractions=(0.0, 1.0, 0.0), drift_fraction=0.0)
    run = generate(spec)
    for kernel in run.kernels:
        if len(kernel) > 10:
            assert np.all(np.diff(kernel.batch.insn_count) >= 0)


def test_zero_correlation_leaves_order_unsorted():
    spec = make_spec(name="unramped", chrono_size_correlation=0.0,
                     tier_fractions=(0.0, 1.0, 0.0), drift_fraction=0.0)
    run = generate(spec)
    big = max(run.kernels, key=len)
    assert not np.all(np.diff(big.batch.insn_count) >= 0)


def test_drift_shrinks_only_tier3_prefixes():
    spec = make_spec(name="drifty", drift_fraction=0.3, drift_factor=0.1,
                     chrono_size_correlation=0.0)
    run = generate(spec)
    for kernel in run.kernels:
        if kernel.intended_tier is Tier.TIER3 and len(kernel) > 20:
            insn = kernel.batch.insn_count
            prefix = insn[: int(0.3 * len(insn))].mean()
            suffix = insn[int(0.3 * len(insn)):].mean()
            assert prefix < suffix * 0.5


def test_variable_kernels_respect_grid_floor(toy_run):
    for kernel in toy_run.kernels:
        if kernel.intended_tier is not Tier.TIER1:
            # Floor applies to the base size; drifted prefixes may dip.
            assert kernel.batch.num_ctas.max() >= MIN_VARIABLE_KERNEL_CTAS * 0.5


def test_max_invocations_cap(toy_spec):
    run = generate(toy_spec, max_invocations=300)
    assert run.num_invocations == 300
    assert len(run.kernels) == toy_spec.num_kernels


def test_kernel_by_name(toy_run):
    kernel = toy_run.kernels[0]
    assert toy_run.kernel_by_name(kernel.traits.name) is kernel
    with pytest.raises(KeyError):
        toy_run.kernel_by_name("no-such-kernel")


def test_dominant_kernel_share():
    spec = make_spec(name="dominant", dominant_kernel_share=0.5)
    run = generate(spec)
    assert len(run.kernels[0]) >= 0.45 * run.num_invocations
    assert run.kernels[0].intended_tier is Tier.TIER3


def test_turing_bias_applied_to_requested_fraction():
    spec = make_spec(name="biased", turing_biased_fraction=0.5,
                     turing_factor=0.7)
    run = generate(spec)
    biased = [
        k for k in run.kernels if k.traits.efficiency_on("turing") == 0.7
    ]
    assert len(biased) == round(0.5 * spec.num_kernels)


def test_metric_columns_scale_with_instruction_count(toy_run):
    for kernel in toy_run.kernels:
        if len(kernel) < 20 or kernel.intended_tier is not Tier.TIER3:
            continue
        batch = kernel.batch
        if batch.thread_global_loads.max() == 0:
            continue
        ratio = batch.thread_global_loads / batch.insn_count
        # Per-instruction rates are near-constant within a kernel.
        assert ratio.std() / ratio.mean() < 0.2
