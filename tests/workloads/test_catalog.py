"""Tests for the Table I workload catalog."""

import pytest

from repro.workloads.catalog import (
    CHALLENGING_SUITES,
    SIMPLE_SUITES,
    all_specs,
    spec_for,
    specs_for_suites,
    workload_names,
)

#: Table I ground truth: (suite, workload, kernels, invocations).
TABLE1 = [
    ("parboil", "bfs_ny", 2, 11),
    ("parboil", "histo", 4, 252),
    ("parboil", "lbm", 1, 3000),
    ("parboil", "mri-g", 9, 51),
    ("parboil", "stencil", 1, 100),
    ("rodinia", "cfd", 4, 14003),
    ("rodinia", "dwt2d", 4, 10),
    ("rodinia", "gaussian", 2, 16382),
    ("rodinia", "heartwall", 1, 20),
    ("rodinia", "hotspot3d", 1, 100),
    ("rodinia", "huffman", 6, 46),
    ("rodinia", "lud", 3, 22),
    ("rodinia", "nw", 2, 255),
    ("rodinia", "srad", 6, 502),
    ("sdk", "blackscholes", 1, 512),
    ("sdk", "cholesky", 25, 143),
    ("sdk", "gradient", 7, 84),
    ("sdk", "dct8x8", 8, 118),
    ("sdk", "histogram", 4, 68),
    ("sdk", "hsopticalflow", 6, 7576),
    ("sdk", "mergesort", 4, 49),
    ("sdk", "nvjpeg", 2, 32),
    ("sdk", "random", 2, 42),
    ("sdk", "sortingnet", 4, 290),
    ("cactus", "gru", 8, 43_837),
    ("cactus", "gst", 15, 175),
    ("cactus", "gms", 14, 92_520),
    ("cactus", "lmc", 58, 248_548),
    ("cactus", "lmr", 62, 74_765),
    ("cactus", "dcg", 59, 414_585),
    ("cactus", "lgt", 74, 532_707),
    ("cactus", "nst", 50, 1_072_246),
    ("cactus", "rfl", 57, 206_407),
    ("cactus", "spt", 43, 112_668),
    ("mlperf", "3d-unet", 20, 113_183),
    ("mlperf", "bert", 11, 141_964),
    ("mlperf", "resnet50", 20, 78_825),
    ("mlperf", "rnnt", 39, 205_440),
    ("mlperf", "ssd-mobilenet", 33, 64_138),
    ("mlperf", "ssd-resnet34", 26, 57_267),
]


def test_catalog_has_all_40_workloads():
    assert len(all_specs()) == 40


@pytest.mark.parametrize("suite,name,kernels,invocations", TABLE1)
def test_table1_counts_exact(suite, name, kernels, invocations):
    spec = spec_for(f"{suite}/{name}")
    assert spec.num_kernels == kernels
    assert spec.num_invocations == invocations


def test_suite_partition():
    simple = specs_for_suites(SIMPLE_SUITES)
    challenging = specs_for_suites(CHALLENGING_SUITES)
    assert len(simple) == 24
    assert len(challenging) == 16
    assert {s.label for s in simple}.isdisjoint({s.label for s in challenging})


def test_lookup_by_bare_name():
    assert spec_for("lmc").label == "cactus/lmc"


def test_lookup_unknown_raises():
    with pytest.raises(KeyError):
        spec_for("nonexistent")


def test_workload_names_filtering():
    assert "bert" in workload_names(["mlperf"])
    assert "bert" not in workload_names(["cactus"])
    assert len(workload_names()) == 40


def test_mlperf_profiles_are_costlier():
    """The paper attributes MLPerf's profiling gap to instruction-type
    richness; the catalog must encode that."""
    for spec in specs_for_suites(("mlperf",)):
        assert spec.profiling_complexity > 2.0
    for spec in specs_for_suites(("parboil",)):
        assert spec.profiling_complexity == 1.0


def test_gst_has_dominant_variable_kernel():
    spec = spec_for("cactus/gst")
    assert spec.dominant_kernel_share >= 0.5


def test_lmc_lmr_favor_turing():
    for name in ("cactus/lmc", "cactus/lmr"):
        spec = spec_for(name)
        assert spec.turing_factor < 1.0
        assert spec.turing_biased_fraction > 0.5
