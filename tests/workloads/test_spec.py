"""Tests for workload specifications."""

import pytest

from repro.workloads.spec import KernelBehavior, Tier, WorkloadSpec
from tests.conftest import make_spec


class TestKernelBehavior:
    def test_defaults_are_valid(self):
        KernelBehavior()

    def test_rejects_bad_tier2_cov(self):
        with pytest.raises(ValueError):
            KernelBehavior(tier2_cov=1.5)

    def test_rejects_single_mode(self):
        with pytest.raises(ValueError):
            KernelBehavior(tier3_modes=1)

    def test_rejects_spread_below_one(self):
        with pytest.raises(ValueError):
            KernelBehavior(tier3_spread=0.9)


class TestWorkloadSpec:
    def test_label(self):
        assert make_spec().label == "testsuite/toy"

    def test_tier_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            make_spec(tier_fractions=(0.5, 0.5, 0.5))

    def test_needs_one_invocation_per_kernel(self):
        with pytest.raises(ValueError):
            make_spec(num_kernels=10, num_invocations=5)

    def test_alias_groups_bounded_by_kernels(self):
        with pytest.raises(ValueError):
            make_spec(num_kernels=2, alias_groups=5)

    def test_correlation_bounds(self):
        with pytest.raises(ValueError):
            make_spec(chrono_size_correlation=1.5)

    def test_scaled_caps_invocations(self):
        spec = make_spec(num_invocations=10_000)
        capped = spec.scaled(500)
        assert capped.num_invocations == 500
        assert capped.num_kernels == spec.num_kernels
        assert capped.behavior == spec.behavior

    def test_scaled_is_identity_when_under_cap(self):
        spec = make_spec(num_invocations=100)
        assert spec.scaled(1000) is spec

    def test_scaled_rejects_cap_below_kernel_count(self):
        with pytest.raises(ValueError):
            make_spec(num_kernels=8).scaled(4)


def test_tier_enum_values_match_paper_names():
    assert Tier.TIER1.value == 1
    assert Tier.TIER2.value == 2
    assert Tier.TIER3.value == 3
