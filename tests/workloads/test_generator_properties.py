"""Property-based tests for the workload generator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import AMPERE_RTX3080, HardwareExecutor
from repro.workloads.generator import generate
from tests.conftest import make_spec


@settings(max_examples=12, deadline=None)
@given(
    kernels=st.integers(min_value=1, max_value=12),
    invocations=st.integers(min_value=12, max_value=600),
    tier1=st.floats(min_value=0.0, max_value=1.0),
    tier3=st.floats(min_value=0.0, max_value=1.0),
    skew=st.floats(min_value=0.0, max_value=2.0),
    correlation=st.floats(min_value=0.0, max_value=1.0),
    seed_name=st.integers(min_value=0, max_value=5),
)
def test_generate_always_yields_a_measurable_workload(
    kernels, invocations, tier1, tier3, skew, correlation, seed_name
):
    """For any sane spec, generation succeeds, counts are exact, the
    chronology is a permutation, and the hardware model can execute every
    invocation."""
    remaining = 1.0 - tier1
    t3 = tier3 * remaining
    t2 = remaining - t3
    spec = make_spec(
        name=f"prop{seed_name}",
        num_kernels=kernels,
        num_invocations=max(invocations, kernels),
        tier_fractions=(tier1, t2, t3),
        invocation_skew=skew,
        chrono_size_correlation=correlation,
        alias_groups=min(3, kernels),
    )
    run = generate(spec)
    assert run.num_invocations == spec.num_invocations
    assert len(run.kernels) == kernels

    chrono = np.concatenate([k.batch.chrono_index for k in run.kernels])
    assert sorted(chrono.tolist()) == list(range(spec.num_invocations))

    measurement = HardwareExecutor(AMPERE_RTX3080).measure(run)
    assert measurement.total_cycles > 0
    assert measurement.total_instructions == run.total_instructions
