"""CLI surface of the performance version store.

``perf list/ingest/log/bisect-hint`` and ``report --against REV`` drive
the same store/gate layers the benches auto-record into; these tests
exercise them end-to-end through ``main`` with a scratch store.
"""

import pytest

from repro.cli import build_parser, main
from repro.observability.manifest import RunManifest, StageStat

JITTER = (0.97, 1.00, 1.03)
RERUN_JITTER = (0.98, 1.01, 1.02)


def write_manifest(path, factor=1.0, jitter=1.0):
    scale = factor * jitter
    manifest = RunManifest(
        command="bench fig3",
        created="2026-01-01T00:00:00+00:00",
        config={"cap": 400, "jobs": 1},
        total_wall_s=2.0 * scale,
        stages=(
            StageStat(
                name="stratify", count=1,
                wall_s=1.2 * scale, self_s=1.2 * scale, cpu_s=1.2 * scale,
            ),
        ),
        workloads=({"workload": "w", "sieve_error": 0.01},),
        aggregates={"sieve_avg": 0.01},
    )
    manifest.save(path)
    return path


@pytest.fixture
def store_dir(tmp_path):
    """A store seeded with 3 baseline runs of version ``base-rev``."""
    store = tmp_path / "store"
    for i, j in enumerate(JITTER):
        path = write_manifest(tmp_path / f"base-{i}.json", jitter=j)
        assert main(
            ["perf", "ingest", str(path), "--store", str(store),
             "--version", "base-rev"]
        ) == 0
    return store


def test_parser_routes_perf_and_promote_commands():
    parser = build_parser()
    for argv in (
        ["perf", "list"],
        ["perf", "ingest", "m.json"],
        ["perf", "log", "--figure", "scale", "--metric", "stage:stratify"],
        ["perf", "bisect-hint"],
        ["report", "m.json", "--against", "HEAD~1"],
        ["fuzz", "promote", "--findings", "f.json"],
        ["fuzz", "--seed", "s"],  # legacy spelling still parses
    ):
        args = parser.parse_args(argv)
        assert callable(args.handler)
    legacy = parser.parse_args(["fuzz", "--seed", "s"])
    assert legacy.fuzz_command is None


def test_perf_list_and_ingest(store_dir, capsys):
    assert main(["perf", "list", "--store", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "base-rev" in out and "fig3" in out and "3" in out


def test_perf_list_empty_store(tmp_path, capsys):
    assert main(["perf", "list", "--store", str(tmp_path / "empty")]) == 0
    assert "(empty store" in capsys.readouterr().out


def test_perf_ingest_reports_dedup(store_dir, tmp_path, capsys):
    path = write_manifest(tmp_path / "dup.json", jitter=JITTER[0])
    assert main(
        ["perf", "ingest", str(path), "--store", str(store_dir),
         "--version", "base-rev"]
    ) == 0
    assert "deduplicated" in capsys.readouterr().out


def test_perf_log_renders_lineage(store_dir, tmp_path, capsys):
    for i, j in enumerate(RERUN_JITTER):
        path = write_manifest(tmp_path / f"new-{i}.json", factor=2.0, jitter=j)
        main(["perf", "ingest", str(path), "--store", str(store_dir),
              "--version", "slow-rev"])
    assert main(["perf", "log", "--store", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "base-rev" in out and "slow-rev" in out and "median" in out


def test_perf_bisect_hint_exit_codes(store_dir, tmp_path, capsys):
    for i, j in enumerate(RERUN_JITTER):
        path = write_manifest(tmp_path / f"new-{i}.json", factor=2.0, jitter=j)
        main(["perf", "ingest", str(path), "--store", str(store_dir),
              "--version", "slow-rev"])
    assert main(["perf", "bisect-hint", "--store", str(store_dir)]) == 1
    out = capsys.readouterr().out
    assert "first regression" in out and "base-rev" in out


def test_report_against_flags_2x_slowdown(store_dir, tmp_path, capsys):
    current = [
        str(write_manifest(tmp_path / f"cur-{i}.json", factor=2.0, jitter=j))
        for i, j in enumerate(RERUN_JITTER)
    ]
    code = main(
        ["report", *current, "--against", "base-rev", "--store", str(store_dir)]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "verdict: REGRESSED" in out
    assert "FAIL" in out and "p=" in out and "CI[" in out


def test_report_against_passes_same_distribution(store_dir, tmp_path, capsys):
    current = [
        str(write_manifest(tmp_path / f"cur-{i}.json", jitter=j))
        for i, j in enumerate(RERUN_JITTER)
    ]
    code = main(
        ["report", *current, "--against", "base-rev", "--store", str(store_dir)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "verdict: INDISTINGUISHABLE" in out


def test_report_against_resolves_version_prefix(store_dir, tmp_path, capsys):
    current = str(write_manifest(tmp_path / "cur.json", jitter=1.0))
    assert main(
        ["report", current, "--against", "base", "--store", str(store_dir)]
    ) == 0
    assert "base-rev"[:12] in capsys.readouterr().out


def test_report_against_unknown_rev_without_fallback(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # no benchmarks/baselines/ here
    current = str(write_manifest(tmp_path / "cur.json"))
    code = main(
        ["report", current, "--against", "no-such-rev",
         "--store", str(tmp_path / "empty-store")]
    )
    assert code == 2
    assert "no stored" in capsys.readouterr().err


def test_report_against_falls_back_to_committed_baseline(tmp_path, capsys):
    # An empty store + the repo's committed BENCH_fig3.json baseline:
    # gating the baseline against itself must pass via the fallback.
    current = tmp_path / "cur.json"
    baseline = RunManifest.load("benchmarks/baselines/BENCH_fig3.json")
    baseline.save(current)
    code = main(
        ["report", str(current), "--against", "no-such-rev",
         "--store", str(tmp_path / "empty-store"), "--figure", "fig3"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "BENCH_fig3.json" in out
