"""Catalog-wide smoke: every Table I workload runs the full Sieve path.

Parameterized over all 40 workloads at a small invocation cap, this
catches per-workload generation/stratification edge cases (single-kernel
workloads, tiny invocation counts, dominant-kernel structure, extreme
spreads) that the targeted tests might miss.
"""

import pytest

from repro import AMPERE_RTX3080, HardwareExecutor, NVBitProfiler, SievePipeline
from repro.workloads.catalog import all_specs
from repro.workloads.generator import generate

CAP = 600


@pytest.mark.parametrize(
    "label", [spec.label for spec in all_specs()]
)
def test_workload_runs_the_sieve_pipeline(label):
    from repro.workloads.catalog import spec_for

    spec = spec_for(label)
    run = generate(spec, max_invocations=CAP)
    assert run.num_invocations == min(spec.num_invocations, CAP)

    table, cost = NVBitProfiler().profile(run)
    assert cost.total_seconds > 0

    pipeline = SievePipeline()
    selection = pipeline.select(table)
    assert spec.num_kernels <= selection.num_representatives <= len(table)
    assert sum(r.weight for r in selection.representatives) == pytest.approx(1.0)

    golden = HardwareExecutor(AMPERE_RTX3080).measure(run)
    prediction = pipeline.predict(selection, golden)
    # Generous bound: at cap 600 even the nastiest workload must land
    # within 20% (full-scale accuracy is asserted by the benches).
    assert prediction.error_against(golden.total_cycles) < 0.20
