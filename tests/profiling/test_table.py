"""Tests for ProfileTable."""

import numpy as np
import pytest

from repro.profiling.table import ProfileTable


def make_table(with_metrics=True):
    n = 6
    metrics = np.arange(n * 12, dtype=np.float64).reshape(n, 12) if with_metrics else None
    return ProfileTable(
        workload="suite/x",
        kernel_names=("a", "b"),
        kernel_id=np.array([0, 1, 0, 1, 0, 0], dtype=np.int32),
        invocation_id=np.array([0, 0, 1, 1, 2, 3], dtype=np.int64),
        insn_count=np.array([10, 20, 10, 25, 12, 10], dtype=np.int64),
        cta_size=np.full(6, 128, dtype=np.int32),
        num_ctas=np.full(6, 64, dtype=np.int64),
        metrics=metrics,
    )


def test_len_and_num_kernels():
    table = make_table()
    assert len(table) == 6
    assert table.num_kernels == 2


def test_total_instructions():
    assert make_table().total_instructions == 87


def test_rows_for_kernel():
    table = make_table()
    assert table.rows_for_kernel(0).tolist() == [0, 2, 4, 5]
    assert table.rows_for_kernel(1).tolist() == [1, 3]


def test_kernel_name_of_row():
    table = make_table()
    assert table.kernel_name_of_row(0) == "a"
    assert table.kernel_name_of_row(3) == "b"


def test_without_metrics_strips_matrix():
    stripped = make_table().without_metrics()
    assert stripped.metrics is None
    assert stripped.total_instructions == 87


def test_rejects_kernel_id_out_of_range():
    with pytest.raises(ValueError):
        ProfileTable(
            workload="w",
            kernel_names=("a",),
            kernel_id=np.array([0, 1], dtype=np.int32),
            invocation_id=np.zeros(2, dtype=np.int64),
            insn_count=np.ones(2, dtype=np.int64),
            cta_size=np.full(2, 64, dtype=np.int32),
            num_ctas=np.ones(2, dtype=np.int64),
        )


def test_rejects_metric_shape_mismatch():
    with pytest.raises(ValueError):
        ProfileTable(
            workload="w",
            kernel_names=("a",),
            kernel_id=np.zeros(2, dtype=np.int32),
            invocation_id=np.zeros(2, dtype=np.int64),
            insn_count=np.ones(2, dtype=np.int64),
            cta_size=np.full(2, 64, dtype=np.int32),
            num_ctas=np.ones(2, dtype=np.int64),
            metrics=np.zeros((2, 3)),
        )
