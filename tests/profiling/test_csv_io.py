"""Tests for CSV round-tripping of profile tables."""

import csv

import numpy as np
import pytest

from repro.gpu.kernel import PKS_METRIC_NAMES
from repro.profiling.csv_io import read_profile_csv, write_profile_csv
from repro.profiling.nsight import NsightComputeProfiler
from repro.profiling.nvbit import NVBitProfiler
from repro.profiling.table import ProfileTable
from repro.utils.errors import ProfileError


def assert_tables_equal(a, b, with_metrics):
    """Equality up to kernel renumbering (the reader numbers kernels by
    first chronological appearance)."""
    assert a.workload == b.workload
    assert set(a.kernel_names) == set(b.kernel_names)
    names_a = [a.kernel_name_of_row(r) for r in range(len(a))]
    names_b = [b.kernel_name_of_row(r) for r in range(len(b))]
    assert names_a == names_b
    assert np.array_equal(a.invocation_id, b.invocation_id)
    assert np.array_equal(a.insn_count, b.insn_count)
    assert np.array_equal(a.cta_size, b.cta_size)
    assert np.array_equal(a.num_ctas, b.num_ctas)
    if with_metrics:
        assert np.allclose(a.metrics, b.metrics)
    else:
        assert b.metrics is None


def test_sieve_profile_round_trip(toy_run, tmp_path):
    table, _ = NVBitProfiler().profile(toy_run)
    path = tmp_path / "sieve.csv"
    write_profile_csv(table, path)
    assert_tables_equal(table, read_profile_csv(path), with_metrics=False)


def test_pks_profile_round_trip(toy_run, tmp_path):
    table, _ = NsightComputeProfiler().profile(toy_run)
    path = tmp_path / "pks.csv"
    write_profile_csv(table, path)
    assert_tables_equal(table, read_profile_csv(path), with_metrics=True)


def test_csv_is_human_readable(toy_run, tmp_path):
    table, _ = NVBitProfiler().profile(toy_run)
    path = tmp_path / "readable.csv"
    write_profile_csv(table, path)
    lines = path.read_text().splitlines()
    assert lines[0].startswith("# workload")
    assert lines[1].split(",")[:3] == ["kernel_name", "invocation_id", "insn_count"]
    assert len(lines) == len(table) + 2


# ------------------------------------------------------------------ #
# Adversarial round trips


def tiny_table(kernel_names, rows_per_kernel=2, with_metrics=False):
    n = len(kernel_names) * rows_per_kernel
    insn = np.arange(1, n + 1, dtype=np.int64) * 1000
    metrics = None
    if with_metrics:
        metrics = np.linspace(0.0, 1.0, n * len(PKS_METRIC_NAMES)).reshape(
            n, len(PKS_METRIC_NAMES)
        )
        # The writer derives this column from insn_count, so keep them
        # consistent for byte-exact round trips.
        metrics[:, PKS_METRIC_NAMES.index("instruction_count")] = insn
    return ProfileTable(
        workload="adversarial",
        kernel_names=tuple(kernel_names),
        kernel_id=np.repeat(
            np.arange(len(kernel_names), dtype=np.int32), rows_per_kernel
        ),
        invocation_id=np.tile(
            np.arange(rows_per_kernel, dtype=np.int64), len(kernel_names)
        ),
        insn_count=insn,
        cta_size=np.full(n, 128, dtype=np.int32),
        num_ctas=np.full(n, 16, dtype=np.int64),
        metrics=metrics,
    )


@pytest.mark.parametrize(
    "name",
    [
        'kernel<float, 4>(int, float*)',
        "reduce, then scan",
        'say "hello"',
        "ядро_свёртки",  # unicode
        "tab\tand space kernel",
    ],
)
def test_round_trip_survives_hostile_kernel_names(tmp_path, name):
    table = tiny_table([name, "plain_kernel"])
    path = tmp_path / "hostile.csv"
    write_profile_csv(table, path)
    assert_tables_equal(table, read_profile_csv(path), with_metrics=False)


def test_round_trip_reordered_metric_columns(tmp_path):
    table = tiny_table(["a", "b"], with_metrics=True)
    path = tmp_path / "ordered.csv"
    write_profile_csv(table, path)
    with path.open(newline="") as handle:
        preamble, header, *rows = list(csv.reader(handle))
    base, metric_cols = header[:5], header[5:]
    order = list(reversed(range(len(metric_cols))))
    shuffled = tmp_path / "shuffled.csv"
    with shuffled.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(preamble)
        writer.writerow(base + [metric_cols[j] for j in order])
        for row in rows:
            writer.writerow(row[:5] + [row[5 + j] for j in order])
    assert_tables_equal(table, read_profile_csv(shuffled), with_metrics=True)


def test_round_trip_single_invocation_table(tmp_path):
    table = tiny_table(["only"], rows_per_kernel=1)
    path = tmp_path / "single.csv"
    write_profile_csv(table, path)
    restored = read_profile_csv(path)
    assert len(restored) == 1
    assert_tables_equal(table, restored, with_metrics=False)


# ------------------------------------------------------------------ #
# Strict-reader error reporting


def test_read_empty_file_raises_profile_error(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ProfileError, match="empty profile CSV"):
        read_profile_csv(path)


def test_read_header_only_raises(tmp_path):
    path = tmp_path / "headeronly.csv"
    path.write_text(
        "# workload,x,rows,0\n"
        "kernel_name,invocation_id,insn_count,cta_size,num_ctas\n"
    )
    with pytest.raises(ProfileError, match="no invocation rows"):
        read_profile_csv(path)


def test_read_bad_row_reports_path_and_line(tmp_path):
    table = tiny_table(["a", "b"])
    path = tmp_path / "badrow.csv"
    write_profile_csv(table, path)
    lines = path.read_text().splitlines()
    lines[4] = "a,not_an_int,5,128,16"
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ProfileError) as excinfo:
        read_profile_csv(path)
    assert excinfo.value.path == str(path)
    assert excinfo.value.row == 5  # 1-based line number
    assert str(path) in str(excinfo.value)
    assert "row 5" in str(excinfo.value)


def test_read_truncated_file_raises(tmp_path):
    table = tiny_table(["a", "b"])
    path = tmp_path / "truncated.csv"
    write_profile_csv(table, path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-2]) + "\n")
    with pytest.raises(ProfileError, match="row count mismatch"):
        read_profile_csv(path)


def test_read_unknown_metric_column_raises(tmp_path):
    path = tmp_path / "unknown.csv"
    path.write_text(
        "# workload,x,rows,1\n"
        "kernel_name,invocation_id,insn_count,cta_size,num_ctas,bogus_metric\n"
        "k,0,100,128,16,1.5\n"
    )
    with pytest.raises(ProfileError, match="unknown metric columns"):
        read_profile_csv(path)
