"""Tests for CSV round-tripping of profile tables."""

import numpy as np

from repro.profiling.csv_io import read_profile_csv, write_profile_csv
from repro.profiling.nsight import NsightComputeProfiler
from repro.profiling.nvbit import NVBitProfiler


def assert_tables_equal(a, b, with_metrics):
    """Equality up to kernel renumbering (the reader numbers kernels by
    first chronological appearance)."""
    assert a.workload == b.workload
    assert set(a.kernel_names) == set(b.kernel_names)
    names_a = [a.kernel_name_of_row(r) for r in range(len(a))]
    names_b = [b.kernel_name_of_row(r) for r in range(len(b))]
    assert names_a == names_b
    assert np.array_equal(a.invocation_id, b.invocation_id)
    assert np.array_equal(a.insn_count, b.insn_count)
    assert np.array_equal(a.cta_size, b.cta_size)
    assert np.array_equal(a.num_ctas, b.num_ctas)
    if with_metrics:
        assert np.allclose(a.metrics, b.metrics)
    else:
        assert b.metrics is None


def test_sieve_profile_round_trip(toy_run, tmp_path):
    table, _ = NVBitProfiler().profile(toy_run)
    path = tmp_path / "sieve.csv"
    write_profile_csv(table, path)
    assert_tables_equal(table, read_profile_csv(path), with_metrics=False)


def test_pks_profile_round_trip(toy_run, tmp_path):
    table, _ = NsightComputeProfiler().profile(toy_run)
    path = tmp_path / "pks.csv"
    write_profile_csv(table, path)
    assert_tables_equal(table, read_profile_csv(path), with_metrics=True)


def test_csv_is_human_readable(toy_run, tmp_path):
    table, _ = NVBitProfiler().profile(toy_run)
    path = tmp_path / "readable.csv"
    write_profile_csv(table, path)
    lines = path.read_text().splitlines()
    assert lines[0].startswith("# workload")
    assert lines[1].split(",")[:3] == ["kernel_name", "invocation_id", "insn_count"]
    assert len(lines) == len(table) + 2
