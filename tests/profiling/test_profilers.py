"""Tests for the NVBit/Nsight profiler front-ends."""

import numpy as np

from repro.profiling.nsight import NsightComputeProfiler
from repro.profiling.nvbit import NVBitProfiler


def test_nvbit_profile_has_no_metric_matrix(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    assert table.metrics is None


def test_nsight_profile_has_full_matrix(toy_run):
    table, _ = NsightComputeProfiler().profile(toy_run)
    assert table.metrics is not None
    assert table.metrics.shape == (toy_run.num_invocations, 12)


def test_profiles_are_chronological(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    # Reconstruct each row's global chronological position and check order.
    positions = []
    for row in range(len(table)):
        kernel = toy_run.kernels[int(table.kernel_id[row])]
        positions.append(int(kernel.batch.chrono_index[table.invocation_id[row]]))
    assert positions == sorted(positions)
    assert positions == list(range(toy_run.num_invocations))


def test_profile_rows_match_run_contents(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    for kernel_id, kernel in enumerate(toy_run.kernels):
        rows = table.rows_for_kernel(kernel_id)
        assert np.array_equal(
            table.insn_count[rows][np.argsort(table.invocation_id[rows])],
            kernel.batch.insn_count,
        )


def test_both_profilers_see_identical_instruction_counts(toy_run):
    nvbit, _ = NVBitProfiler().profile(toy_run)
    nsight, _ = NsightComputeProfiler().profile(toy_run)
    assert np.array_equal(nvbit.insn_count, nsight.insn_count)
    assert nvbit.kernel_names == nsight.kernel_names


def test_nsight_costs_more_than_nvbit(toy_run):
    _, nvbit_cost = NVBitProfiler().profile(toy_run)
    _, nsight_cost = NsightComputeProfiler().profile(toy_run)
    assert nsight_cost.total_seconds > nvbit_cost.total_seconds
    assert nsight_cost.replay_passes > nvbit_cost.replay_passes


def test_workload_label_propagates(toy_run):
    table, cost = NVBitProfiler().profile(toy_run)
    assert table.workload == toy_run.label
    assert cost.workload == toy_run.label
