"""Tests for the Table II metric definitions."""

from repro.gpu.kernel import PKS_METRIC_NAMES
from repro.profiling.metrics import PKS_METRICS, SIEVE_METRICS


def test_pks_collects_twelve_characteristics():
    assert len(PKS_METRICS) == 12
    assert all(m.used_by_pks for m in PKS_METRICS)


def test_sieve_collects_exactly_instruction_count():
    assert [m.name for m in SIEVE_METRICS] == ["instruction_count"]


def test_metric_names_align_with_batch_matrix_columns():
    assert tuple(m.name for m in PKS_METRICS) == PKS_METRIC_NAMES


def test_descriptions_present():
    assert all(m.description for m in PKS_METRICS)
