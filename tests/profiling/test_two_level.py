"""Tests for two-level profiling."""

import pytest

from repro.profiling.nsight import NsightComputeProfiler
from repro.profiling.two_level import TwoLevelProfiler


def test_batches_partition_the_workload(toy_run):
    profile = TwoLevelProfiler(detailed_budget=200).profile(toy_run)
    assert len(profile.detailed) == 200
    assert len(profile.light) == toy_run.num_invocations - 200
    assert profile.num_invocations == toy_run.num_invocations


def test_detailed_batch_is_the_chronological_prefix(toy_run):
    profile = TwoLevelProfiler(detailed_budget=150).profile(toy_run)
    full, _ = NsightComputeProfiler().profile(toy_run)
    assert (
        [profile.detailed.kernel_name_of_row(r) for r in range(150)]
        == [full.kernel_name_of_row(r) for r in range(150)]
    )


def test_light_batch_has_no_metrics(toy_run):
    profile = TwoLevelProfiler(detailed_budget=100).profile(toy_run)
    assert profile.detailed.metrics is not None
    assert profile.light.metrics is None


def test_two_level_is_cheaper_than_full_detail(toy_run):
    two_level = TwoLevelProfiler(detailed_budget=100).profile(toy_run)
    _, full_cost = NsightComputeProfiler().profile(toy_run)
    assert two_level.total_seconds < full_cost.total_seconds


def test_budget_larger_than_workload_clamps(toy_run):
    profile = TwoLevelProfiler(detailed_budget=10**9).profile(toy_run)
    assert len(profile.detailed) == toy_run.num_invocations
    assert len(profile.light) == 0


def test_invalid_budget_rejected():
    with pytest.raises(ValueError):
        TwoLevelProfiler(detailed_budget=0)
