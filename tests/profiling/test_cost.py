"""Tests for the profiling cost model."""

import numpy as np
import pytest

from repro.profiling.cost import (
    NSIGHT_METRICS_PER_PASS,
    ProfilingCostModel,
)


@pytest.fixture
def model():
    return ProfilingCostModel()


def seconds(n=100, each=0.001):
    return np.full(n, each)


def footprints(n=100, each=1e6):
    return np.full(n, each)


def test_nsight_pass_count_scales_with_metrics(model):
    few = model.nsight_cost("w", seconds(), footprints(), num_metrics=3)
    many = model.nsight_cost("w", seconds(), footprints(), num_metrics=12)
    assert many.replay_passes > few.replay_passes
    assert few.replay_passes == -(-3 // NSIGHT_METRICS_PER_PASS)


def test_complexity_multiplies_passes(model):
    base = model.nsight_cost("w", seconds(), footprints(), 12, complexity=1.0)
    rich = model.nsight_cost("w", seconds(), footprints(), 12, complexity=3.0)
    assert rich.replay_passes == pytest.approx(base.replay_passes * 3, abs=1)
    assert rich.total_seconds > base.total_seconds


def test_nsight_bookkeeping_grows_superlinearly(model):
    small = model.nsight_cost("w", seconds(1000), footprints(1000), 12)
    large = model.nsight_cost("w", seconds(100_000), footprints(100_000), 12)
    per_invocation_small = small.bookkeeping_seconds / 1000
    per_invocation_large = large.bookkeeping_seconds / 100_000
    assert per_invocation_large > per_invocation_small


def test_nvbit_is_single_pass_linear(model):
    cost = model.nvbit_cost("w", seconds(500))
    assert cost.replay_passes == 1
    assert cost.save_restore_seconds == 0.0
    double = model.nvbit_cost("w", seconds(1000))
    assert double.total_seconds == pytest.approx(cost.total_seconds * 2, rel=0.01)


def test_save_restore_proportional_to_footprint(model):
    small = model.nsight_cost("w", seconds(), footprints(each=1e6), 12)
    big = model.nsight_cost("w", seconds(), footprints(each=1e8), 12)
    assert big.save_restore_seconds == pytest.approx(
        small.save_restore_seconds * 100, rel=0.01
    )


def test_total_days(model):
    cost = model.nvbit_cost("w", np.full(1, 86_400.0 / 25.0))
    assert cost.total_days == pytest.approx(1.0, rel=0.01)
