"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_experiments():
    parser = build_parser()
    for command in ["table1", "table2", "fig2", "fig3", "fig5", "fig7",
                    "fig8", "fig9", "fig10", "sample"]:
        args = parser.parse_args(
            [command] if command != "sample" else [command, "cactus/gru"]
        )
        assert callable(args.handler)


def test_sample_command_runs(capsys):
    assert main(["--cap", "800", "sample", "cactus/gru"]) == 0
    out = capsys.readouterr().out
    assert "sieve" in out
    assert "pks-first" in out
    assert "800" in out


def test_table2_command_runs(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "instruction_count" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_methods_list_shows_every_registered_method(capsys):
    assert main(["methods", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("sieve", "pks", "pks-two-level", "periodic", "random"):
        assert name in out
    assert "SieveConfig" in out


def test_sample_with_method_selection(capsys):
    assert main(["--cap", "800", "sample", "cactus/gru", "--method", "random"]) == 0
    out = capsys.readouterr().out
    assert "random" in out
    assert "pks" not in out


def test_compare_with_custom_methods(capsys):
    assert main(
        ["--cap", "800", "--no-cache", "compare", "cactus/gru",
         "--methods", "sieve,periodic"]
    ) == 0
    out = capsys.readouterr().out
    assert "periodic_err" in out
    assert "sieve_err" in out


def test_compare_unknown_method_fails_cleanly(capsys):
    assert main(
        ["--cap", "800", "compare", "cactus/gru", "--methods", "bogus"]
    ) == 2
    err = capsys.readouterr().err
    assert "unknown sampling method 'bogus'" in err
