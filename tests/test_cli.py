"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_experiments():
    parser = build_parser()
    for command in ["table1", "table2", "fig2", "fig3", "fig5", "fig7",
                    "fig8", "fig9", "fig10", "sample"]:
        args = parser.parse_args(
            [command] if command != "sample" else [command, "cactus/gru"]
        )
        assert callable(args.handler)


def test_sample_command_runs(capsys):
    assert main(["--cap", "800", "sample", "cactus/gru"]) == 0
    out = capsys.readouterr().out
    assert "sieve" in out
    assert "pks-first" in out
    assert "800" in out


def test_table2_command_runs(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "instruction_count" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])
