"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_experiments():
    parser = build_parser()
    for command in ["table1", "table2", "fig2", "fig3", "fig5", "fig7",
                    "fig8", "fig9", "fig10", "sample"]:
        args = parser.parse_args(
            [command] if command != "sample" else [command, "cactus/gru"]
        )
        assert callable(args.handler)


def test_sample_command_runs(capsys):
    assert main(["--cap", "800", "sample", "cactus/gru"]) == 0
    out = capsys.readouterr().out
    assert "sieve" in out
    assert "pks-first" in out
    assert "800" in out


def test_table2_command_runs(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "instruction_count" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_methods_list_shows_every_registered_method(capsys):
    assert main(["methods", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("sieve", "pks", "pks-two-level", "periodic", "random"):
        assert name in out
    assert "SieveConfig" in out


def test_sample_with_method_selection(capsys):
    assert main(["--cap", "800", "sample", "cactus/gru", "--method", "random"]) == 0
    out = capsys.readouterr().out
    assert "random" in out
    assert "pks" not in out


def test_compare_with_custom_methods(capsys):
    assert main(
        ["--cap", "800", "--no-cache", "compare", "cactus/gru",
         "--methods", "sieve,periodic"]
    ) == 0
    out = capsys.readouterr().out
    assert "periodic_err" in out
    assert "sieve_err" in out


def test_compare_unknown_method_fails_cleanly(capsys):
    assert main(
        ["--cap", "800", "compare", "cactus/gru", "--methods", "bogus"]
    ) == 2
    err = capsys.readouterr().err
    assert "unknown sampling method 'bogus'" in err


def test_parser_knows_service_commands():
    parser = build_parser()
    serve = parser.parse_args(["serve", "--port", "0"])
    assert callable(serve.handler) and serve.port == 0
    loadgen = parser.parse_args(
        ["loadgen", "--spawn", "--pattern", "static:10", "--requests", "4"]
    )
    assert callable(loadgen.handler) and loadgen.spawn


def test_loadgen_dry_run_records_deterministic_trace(capsys, tmp_path):
    trace_a = tmp_path / "a.jsonl"
    trace_b = tmp_path / "b.jsonl"
    argv = [
        "--cap", "200", "loadgen", "--dry-run", "--pattern", "poisson:50",
        "--requests", "10", "--seed", "9",
        "--workloads", "rodinia/nw,rodinia/lud", "--methods", "periodic",
    ]
    assert main(argv + ["--record", str(trace_a)]) == 0
    assert main(argv + ["--record", str(trace_b)]) == 0
    assert "generated 10 requests" in capsys.readouterr().out
    assert trace_a.read_bytes() == trace_b.read_bytes()


def test_loadgen_requires_port_without_spawn(capsys):
    assert main(["loadgen", "--requests", "2"]) == 2
    assert "--port is required" in capsys.readouterr().err


def test_loadgen_spawn_round_trip(capsys):
    assert main(
        ["--cap", "150", "loadgen", "--spawn", "--pattern", "static:100",
         "--requests", "6", "--clients", "3",
         "--workloads", "rodinia/nw", "--methods", "periodic,random"]
    ) == 0
    out = capsys.readouterr().out
    assert "http_5xx: 0" in out
    assert "requests: 6" in out
