"""Tests for tier classification."""

import numpy as np
import pytest

from repro.core.tiers import classify_invocations
from repro.workloads.spec import Tier


def test_constant_counts_are_tier1():
    result = classify_invocations(np.array([500, 500, 500]), theta=0.4)
    assert result.tier is Tier.TIER1
    assert result.cov == 0.0


def test_single_invocation_is_tier1():
    assert classify_invocations(np.array([123]), theta=0.4).tier is Tier.TIER1


def test_small_variation_is_tier2():
    values = np.array([100, 101, 99, 100, 102])
    result = classify_invocations(values, theta=0.4)
    assert result.tier is Tier.TIER2
    assert 0 < result.cov <= 0.4


def test_large_variation_is_tier3():
    values = np.array([10, 1000, 10, 1000])
    result = classify_invocations(values, theta=0.4)
    assert result.tier is Tier.TIER3
    assert result.cov > 0.4


def test_threshold_boundary_is_inclusive_for_tier2():
    # mean 2, std 1 -> CoV 0.5 exactly.
    values = np.array([1.0, 3.0])
    assert classify_invocations(values, theta=0.5).tier is Tier.TIER2
    assert classify_invocations(values, theta=0.499).tier is Tier.TIER3


def test_theta_must_be_positive():
    with pytest.raises(ValueError):
        classify_invocations(np.array([1, 2]), theta=0.0)


def test_empty_population_rejected():
    with pytest.raises(ValueError):
        classify_invocations(np.array([]), theta=0.4)


def test_num_invocations_reported():
    assert classify_invocations(np.array([5, 5, 5, 5]), 0.4).num_invocations == 4
