"""End-to-end tests for the Sieve pipeline."""

import numpy as np
import pytest

from repro.core.config import SieveConfig
from repro.core.pipeline import SievePipeline
from repro.gpu import AMPERE_RTX3080, HardwareExecutor
from repro.profiling.nvbit import NVBitProfiler
from repro.workloads.generator import generate
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def selection(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    return SievePipeline().select(table)


def test_one_representative_per_stratum(selection):
    assert selection.num_representatives == len(selection.strata)
    for rep, stratum in zip(selection.representatives, selection.strata):
        assert rep.kernel_name == stratum.kernel_name
        assert rep.group_size == stratum.size


def test_weights_sum_to_one(selection):
    total = sum(r.weight for r in selection.representatives)
    assert total == pytest.approx(1.0)


def test_representative_ids_resolve_in_measurement(selection, toy_measurement):
    for rep in selection.representatives:
        cycles = rep.measured_cycles(toy_measurement)
        insn = rep.measured_insn(toy_measurement)
        assert cycles > 0
        assert insn > 0


def test_prediction_accuracy_on_toy_workload(selection, toy_measurement):
    prediction = SievePipeline().predict(selection, toy_measurement)
    error = prediction.error_against(toy_measurement.total_cycles)
    assert error < 0.05


def test_prediction_near_exact_without_noise():
    spec = make_spec(name="noiseless", measurement_noise_cov=0.0)
    run = generate(spec)
    table, _ = NVBitProfiler().profile(run)
    pipeline = SievePipeline()
    selection = pipeline.select(table)
    golden = HardwareExecutor(AMPERE_RTX3080).measure(run)
    error = pipeline.predict(selection, golden).error_against(golden.total_cycles)
    assert error < 0.03


def test_selection_metadata(selection, toy_run):
    assert selection.workload == toy_run.label
    assert selection.method == "sieve"
    assert selection.num_invocations == toy_run.num_invocations
    assert selection.total_instructions == toy_run.total_instructions


def test_sample_cycles_far_below_total(selection, toy_measurement):
    assert selection.sample_cycles(toy_measurement) < (
        toy_measurement.total_cycles / 5
    )


def test_smaller_theta_gives_more_representatives(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    tight = SievePipeline(SieveConfig(theta=0.1)).select(table)
    loose = SievePipeline(SieveConfig(theta=1.0)).select(table)
    assert tight.num_representatives >= loose.num_representatives


def test_selection_policies_change_representatives(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    default = SievePipeline(SieveConfig(selection_policy="dominant_cta")).select(table)
    random_policy = SievePipeline(SieveConfig(selection_policy="random")).select(table)
    default_rows = [r.row for r in default.representatives]
    random_rows = [r.row for r in random_policy.representatives]
    assert default_rows != random_rows


def test_empty_table_rejected(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    import dataclasses

    empty = dataclasses.replace(
        table,
        kernel_id=np.array([], dtype=np.int32),
        invocation_id=np.array([], dtype=np.int64),
        insn_count=np.array([], dtype=np.int64),
        cta_size=np.array([], dtype=np.int32),
        num_ctas=np.array([], dtype=np.int64),
        metrics=None,
    )
    with pytest.raises(ValueError):
        SievePipeline().select(empty)
