"""Tests for performance prediction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.prediction import (
    PredictionResult,
    predict_cycles,
    predict_cycles_from_cpi,
    predict_ipc,
)


def test_prediction_exact_when_ipc_uniform():
    """If every stratum runs at the same IPC, the prediction is exact."""
    ipc = np.array([1500.0, 1500.0, 1500.0])
    weights = np.array([0.2, 0.3, 0.5])
    predicted = predict_cycles(3_000_000, predict_ipc(ipc, weights))
    assert predicted == pytest.approx(3_000_000 / 1500.0)


def test_prediction_matches_hand_computation():
    # Two strata: 60% of instructions at IPC 2000, 40% at IPC 500.
    ipc = np.array([2000.0, 500.0])
    weights = np.array([0.6, 0.4])
    predicted_ipc = predict_ipc(ipc, weights)
    assert predicted_ipc == pytest.approx(1.0 / (0.6 / 2000 + 0.4 / 500))


@given(
    ipc=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=16),
    raw_weights=st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=16
    ),
    total=st.integers(min_value=1_000, max_value=10**12),
)
def test_ipc_and_cpi_formulations_agree(ipc, raw_weights, total):
    """Section III-D: the weighted harmonic IPC prediction equals the
    weighted arithmetic CPI prediction."""
    size = min(len(ipc), len(raw_weights))
    ipc_arr = np.array(ipc[:size])
    weights = np.array(raw_weights[:size])
    via_ipc = predict_cycles(total, predict_ipc(ipc_arr, weights))
    via_cpi = predict_cycles_from_cpi(total, 1.0 / ipc_arr, weights)
    assert via_ipc == pytest.approx(via_cpi, rel=1e-9)


def test_error_metric_matches_paper_definition():
    result = PredictionResult(
        workload="w", method="sieve", predicted_cycles=110.0,
        predicted_ipc=1.0, num_representatives=3,
    )
    assert result.error_against(100) == pytest.approx(0.10)
    under = PredictionResult(
        workload="w", method="sieve", predicted_cycles=90.0,
        predicted_ipc=1.0, num_representatives=3,
    )
    assert under.error_against(100) == pytest.approx(0.10)


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        predict_cycles(0, 10.0)
    with pytest.raises(ValueError):
        predict_cycles(100, 0.0)
