"""Tests for KDE-based Tier-3 stratification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kde import GaussianKDE1D, kde_strata
from repro.utils.stats import coefficient_of_variation


class TestGaussianKDE:
    def test_density_peaks_at_modes(self):
        samples = np.concatenate([np.full(50, 1.0), np.full(50, 10.0)])
        kde = GaussianKDE1D.fit(samples)
        at_mode = kde.density(np.array([1.0]))[0]
        at_valley = kde.density(np.array([5.5]))[0]
        assert at_mode > at_valley

    def test_density_integrates_to_about_one(self):
        rng = np.random.default_rng(0)
        kde = GaussianKDE1D.fit(rng.normal(0, 1, 200))
        grid = kde.grid(2048)
        density = kde.density(grid)
        integral = np.trapezoid(density, grid)
        assert integral == pytest.approx(1.0, abs=0.02)

    def test_valleys_found_between_separated_modes(self):
        rng = np.random.default_rng(1)
        samples = np.concatenate(
            [rng.normal(0.0, 0.1, 100), rng.normal(5.0, 0.1, 100)]
        )
        valleys = GaussianKDE1D.fit(samples).valley_points()
        assert len(valleys) >= 1
        assert any(1.0 < v < 4.0 for v in valleys)

    def test_no_valleys_for_unimodal_data(self):
        rng = np.random.default_rng(2)
        valleys = GaussianKDE1D.fit(rng.normal(0, 1, 300)).valley_points()
        assert len(valleys) == 0

    def test_degenerate_identical_samples(self):
        kde = GaussianKDE1D.fit(np.full(10, 3.0))
        assert kde.bandwidth > 0
        assert np.isfinite(kde.density(np.array([3.0]))[0])

    def test_bandwidth_scale(self):
        samples = np.random.default_rng(3).normal(0, 1, 100)
        narrow = GaussianKDE1D.fit(samples, bandwidth_scale=0.5)
        wide = GaussianKDE1D.fit(samples, bandwidth_scale=2.0)
        assert wide.bandwidth == pytest.approx(4 * narrow.bandwidth)


class TestKdeStrata:
    def test_separated_modes_become_separate_strata(self):
        values = np.concatenate([np.full(40, 1e6), np.full(40, 1e9)])
        strata = kde_strata(values, theta=0.4)
        assert len(strata) == 2
        assert {len(s) for s in strata} == {40}

    def test_cov_postcondition(self):
        rng = np.random.default_rng(4)
        values = rng.lognormal(mean=15, sigma=1.5, size=500)
        for stratum in kde_strata(values, theta=0.4):
            if len(stratum) > 1:
                assert coefficient_of_variation(values[stratum]) <= 0.4 + 1e-9

    def test_strata_partition_the_population(self):
        rng = np.random.default_rng(5)
        values = rng.lognormal(15, 2.0, 300)
        strata = kde_strata(values, theta=0.4)
        combined = np.sort(np.concatenate(strata))
        assert np.array_equal(combined, np.arange(len(values)))

    def test_strata_ordered_by_size(self):
        values = np.concatenate([np.full(10, 1e9), np.full(10, 1e6)])
        strata = kde_strata(values, theta=0.4)
        means = [values[s].mean() for s in strata]
        assert means == sorted(means)

    def test_low_variability_yields_single_stratum(self):
        rng = np.random.default_rng(6)
        values = rng.normal(1e8, 1e6, 200).clip(min=1)
        assert len(kde_strata(values, theta=0.4)) == 1

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            kde_strata(np.array([1.0, 0.0]), theta=0.4)

    @settings(max_examples=25, deadline=None)
    @given(
        sigma=st.floats(min_value=0.3, max_value=2.5),
        theta=st.floats(min_value=0.15, max_value=1.0),
        n=st.integers(min_value=2, max_value=400),
    )
    def test_property_cov_bound_and_partition(self, sigma, theta, n):
        """Core invariant from Section III-B: after stratification, every
        multi-member stratum satisfies CoV <= theta, and the strata
        partition the invocations."""
        rng = np.random.default_rng(42)
        values = np.maximum(rng.lognormal(10.0, sigma, n), 1.0)
        strata = kde_strata(values, theta=theta)
        combined = np.sort(np.concatenate(strata))
        assert np.array_equal(combined, np.arange(n))
        for stratum in strata:
            if len(stratum) > 1:
                assert coefficient_of_variation(values[stratum]) <= theta + 1e-9
