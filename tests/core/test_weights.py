"""Tests for stratum weighting."""

import numpy as np
import pytest

from repro.core.config import SieveConfig
from repro.core.stratify import stratify_table
from repro.core.weights import stratum_weights
from repro.profiling.nvbit import NVBitProfiler


def test_weights_sum_to_one(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    strata = stratify_table(table, SieveConfig())
    weights = stratum_weights(strata)
    assert weights.sum() == pytest.approx(1.0)
    assert np.all(weights >= 0)


def test_weights_proportional_to_instruction_mass(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    strata = stratify_table(table, SieveConfig())
    weights = stratum_weights(strata)
    total = table.total_instructions
    for stratum, weight in zip(strata, weights):
        assert weight == pytest.approx(stratum.insn_total / total)


def test_empty_strata_rejected():
    with pytest.raises(ValueError):
        stratum_weights([])
