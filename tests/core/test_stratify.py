"""Tests for profile-table stratification."""

import numpy as np

from repro.core.config import SieveConfig
from repro.core.stratify import stratify_table
from repro.profiling.nvbit import NVBitProfiler
from repro.utils.stats import coefficient_of_variation
from repro.workloads.spec import Tier


def strata_for(run, theta=0.4):
    table, _ = NVBitProfiler().profile(run)
    return table, stratify_table(table, SieveConfig(theta=theta))


def test_every_stratum_is_single_kernel(toy_run):
    table, strata = strata_for(toy_run)
    for stratum in strata:
        kernel_ids = np.unique(table.kernel_id[stratum.rows])
        assert len(kernel_ids) == 1
        assert kernel_ids[0] == stratum.kernel_id


def test_strata_partition_the_table(toy_run):
    table, strata = strata_for(toy_run)
    rows = np.sort(np.concatenate([s.rows for s in strata]))
    assert np.array_equal(rows, np.arange(len(table)))


def test_tier12_kernels_form_one_stratum(toy_run):
    table, strata = strata_for(toy_run)
    per_kernel = {}
    for stratum in strata:
        per_kernel.setdefault(stratum.kernel_id, []).append(stratum)
    for kernel_id, kernel_strata in per_kernel.items():
        if kernel_strata[0].tier in (Tier.TIER1, Tier.TIER2):
            assert len(kernel_strata) == 1


def test_tier3_strata_meet_cov_bound(toy_run):
    table, strata = strata_for(toy_run)
    saw_tier3_split = False
    for stratum in strata:
        if stratum.tier is Tier.TIER3:
            saw_tier3_split = True
            if stratum.size > 1:
                cov = coefficient_of_variation(table.insn_count[stratum.rows])
                assert cov <= 0.4 + 1e-9
    assert saw_tier3_split


def test_stratum_rows_are_chronological(toy_run):
    table, strata = strata_for(toy_run)
    for stratum in strata:
        assert np.all(np.diff(stratum.rows) > 0)


def test_stratum_bookkeeping(toy_run):
    table, strata = strata_for(toy_run)
    for stratum in strata:
        assert stratum.insn_total == int(table.insn_count[stratum.rows].sum())
        assert stratum.size == len(stratum.rows)
        assert stratum.label.startswith(stratum.kernel_name)


def test_smaller_theta_never_reduces_strata(toy_run):
    _, loose = strata_for(toy_run, theta=1.0)
    _, tight = strata_for(toy_run, theta=0.15)
    assert len(tight) >= len(loose)
