"""Tests for the shared sampling output types."""

import pytest

from repro.core.types import Representative, SampleSelection


def rep(**overrides):
    defaults = dict(
        kernel_name="k", kernel_id=0, invocation_id=0, row=0,
        weight=1.0, group="g", group_size=10,
    )
    defaults.update(overrides)
    return Representative(**defaults)


def test_negative_weight_rejected():
    with pytest.raises(ValueError):
        rep(weight=-0.1)


def test_empty_group_rejected():
    with pytest.raises(ValueError):
        rep(group_size=0)


def test_selection_requires_representatives():
    with pytest.raises(ValueError):
        SampleSelection(
            workload="w", method="m", representatives=(),
            total_instructions=100, num_invocations=10,
        )


def test_selection_cannot_exceed_population():
    with pytest.raises(ValueError):
        SampleSelection(
            workload="w", method="m",
            representatives=(rep(), rep(invocation_id=1)),
            total_instructions=100, num_invocations=1,
        )


def test_measured_lookups(toy_run, toy_measurement):
    kernel = toy_run.kernels[0]
    representative = rep(kernel_name=kernel.traits.name, invocation_id=2)
    assert representative.measured_cycles(toy_measurement) == int(
        toy_measurement.per_kernel[kernel.traits.name].cycles[2]
    )
    assert representative.measured_insn(toy_measurement) == int(
        kernel.batch.insn_count[2]
    )


def test_unknown_kernel_lookup_raises(toy_measurement):
    with pytest.raises(KeyError):
        rep(kernel_name="ghost").measured_cycles(toy_measurement)


def test_duplicate_kernel_names_rejected_by_executor(toy_run):
    from repro.gpu import AMPERE_RTX3080, HardwareExecutor

    class DoubledWorkload:
        name = "doubled"
        kernels = [toy_run.kernels[0], toy_run.kernels[0]]

    with pytest.raises(ValueError, match="duplicate kernel"):
        HardwareExecutor(AMPERE_RTX3080).measure(DoubledWorkload())
