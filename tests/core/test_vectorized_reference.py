"""Property tests: every vectorized hot path equals its scalar reference.

The vectorization pass rewrote the per-kernel / per-row Python loops in
stratification, KDE splitting, golden-cycle alignment, the harmonic-mean
predictor and PKS cluster bookkeeping as grouped numpy array ops. The
originals survive in :mod:`repro.core.reference`; these tests pin the
two implementations equal across workload shapes, thetas, caps and
selection policies, so any future "optimization" that changes results
fails here rather than drifting a golden.

Integer reductions must match exactly (rows, totals, picks); float
reductions may reassociate, so CoV and predictions compare with a
tolerance far tighter than the goldens' 1e-6 contract.
"""

import types

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pks import PksConfig, PksPipeline
from repro.core.config import SieveConfig
from repro.core.kde import _split_by_boundaries
from repro.core.pipeline import SievePipeline
from repro.core.reference import (
    cycles_in_table_order_scalar,
    pks_representative_rows_scalar,
    sieve_predict_scalar,
    split_by_boundaries_scalar,
    stratify_table_scalar,
)
from repro.core.stratify import stratify_table
from repro.evaluation.imputation import cycles_in_table_order
from repro.gpu import AMPERE_RTX3080, HardwareExecutor
from repro.profiling.nvbit import NVBitProfiler
from repro.workloads.generator import generate
from tests.conftest import make_spec

thetas = st.sampled_from((0.2, 0.4, 0.8))
caps = st.sampled_from((None, 150, 400))


def _fixture(kernels, invocations, tier1, tier3, seed, cap=None):
    """A generated table + golden measurement for one example."""
    remaining = 1.0 - tier1
    t3 = tier3 * remaining
    spec = make_spec(
        name=f"vecprop{seed}",
        num_kernels=kernels,
        num_invocations=max(invocations, kernels),
        tier_fractions=(tier1, remaining - t3, t3),
        alias_groups=min(3, kernels),
    )
    run = generate(spec, max_invocations=cap)
    golden = HardwareExecutor(AMPERE_RTX3080).measure(run)
    table, _ = NVBitProfiler(AMPERE_RTX3080).profile(run)
    return table, golden


@settings(max_examples=10, deadline=None)
@given(
    kernels=st.integers(min_value=1, max_value=10),
    invocations=st.integers(min_value=40, max_value=600),
    tier1=st.floats(min_value=0.0, max_value=1.0),
    tier3=st.floats(min_value=0.0, max_value=1.0),
    theta=thetas,
    cap=caps,
    seed=st.integers(min_value=0, max_value=4),
)
def test_stratify_matches_scalar(
    kernels, invocations, tier1, tier3, theta, cap, seed
):
    table, _ = _fixture(kernels, invocations, tier1, tier3, seed, cap)
    config = SieveConfig(theta=theta)
    vec = stratify_table(table, config)
    ref = stratify_table_scalar(table, config)
    assert len(vec) == len(ref)
    for a, b in zip(vec, ref):
        assert (a.kernel_id, a.kernel_name, a.tier, a.index) == (
            b.kernel_id, b.kernel_name, b.tier, b.index
        )
        assert np.array_equal(np.asarray(a.rows), np.asarray(b.rows))
        assert a.insn_total == b.insn_total
        assert np.isclose(a.insn_cov, b.insn_cov, rtol=1e-9, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=300),
    num_boundaries=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_split_by_boundaries_matches_scalar(n, num_boundaries, seed):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=n)
    boundaries = np.sort(rng.normal(size=num_boundaries))
    vec = _split_by_boundaries(values, boundaries)
    ref = split_by_boundaries_scalar(values, boundaries)
    assert len(vec) == len(ref)
    for a, b in zip(vec, ref):
        assert np.array_equal(a, b)


@settings(max_examples=10, deadline=None)
@given(
    kernels=st.integers(min_value=1, max_value=10),
    invocations=st.integers(min_value=40, max_value=600),
    tier1=st.floats(min_value=0.0, max_value=1.0),
    tier3=st.floats(min_value=0.0, max_value=1.0),
    dirty=st.booleans(),
    seed=st.integers(min_value=0, max_value=4),
)
def test_cycles_alignment_matches_scalar(
    kernels, invocations, tier1, tier3, dirty, seed
):
    import dataclasses

    table, golden = _fixture(kernels, invocations, tier1, tier3, seed)
    if dirty:
        # Knock some invocation ids out of range (both signs) so the
        # kernel-mean / workload-mean imputation ladder is exercised too.
        rng = np.random.default_rng(seed)
        ids = table.invocation_id.copy()
        hit = rng.random(len(ids)) < 0.15
        ids[hit] = rng.choice((-1, -7, 10**6), size=int(hit.sum()))
        table = dataclasses.replace(table, invocation_id=ids)
    vec = cycles_in_table_order(table, golden)
    ref = cycles_in_table_order_scalar(table, golden)
    assert np.array_equal(vec, ref)


@settings(max_examples=10, deadline=None)
@given(
    kernels=st.integers(min_value=1, max_value=10),
    invocations=st.integers(min_value=40, max_value=600),
    tier1=st.floats(min_value=0.0, max_value=1.0),
    tier3=st.floats(min_value=0.0, max_value=1.0),
    theta=thetas,
    seed=st.integers(min_value=0, max_value=4),
)
def test_predict_matches_scalar(
    kernels, invocations, tier1, tier3, theta, seed
):
    table, golden = _fixture(kernels, invocations, tier1, tier3, seed)
    pipe = SievePipeline(SieveConfig(theta=theta))
    selection = pipe.select(table)
    vec = pipe.predict(selection, golden)
    ref = sieve_predict_scalar(selection, golden)
    assert np.isclose(vec.predicted_cycles, ref.predicted_cycles, rtol=1e-12)
    assert np.isclose(vec.predicted_ipc, ref.predicted_ipc, rtol=1e-12)
    assert np.allclose(vec.contributions, ref.contributions, rtol=1e-12)
    assert vec.num_representatives == ref.num_representatives


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    k=st.integers(min_value=1, max_value=8),
    dims=st.integers(min_value=2, max_value=4),
    policy=st.sampled_from(("first", "random", "centroid")),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_pks_representative_rows_match_scalar(n, k, dims, policy, seed):
    rng = np.random.default_rng(seed)
    projected = rng.normal(size=(n, dims))
    labels = rng.integers(0, k, size=n)
    centroids = rng.normal(size=(k, dims))
    # Only ``workload`` feeds the bookkeeping (the random policy's seed);
    # the real table never does.
    table = types.SimpleNamespace(workload=f"prop/pks{seed}")
    pipe = PksPipeline(PksConfig(selection_policy=policy))
    rows, members = pipe._representative_rows(table, projected, labels, centroids)
    rows_ref, members_ref = pks_representative_rows_scalar(
        table, projected, labels, centroids, policy
    )
    assert rows == rows_ref
    assert len(members) == len(members_ref)
    for a, b in zip(members, members_ref):
        assert np.array_equal(a, b)
