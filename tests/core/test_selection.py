"""Tests for representative invocation selection."""

import numpy as np
import pytest

from repro.core.config import SieveConfig
from repro.core.selection import select_representative_row
from repro.core.stratify import stratify_table
from repro.profiling.nvbit import NVBitProfiler
from repro.workloads.spec import Tier


@pytest.fixture(scope="module")
def table_and_strata(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    return table, stratify_table(table, SieveConfig())


def test_tier1_selects_first_chronological(table_and_strata):
    table, strata = table_and_strata
    for stratum in strata:
        if stratum.tier is Tier.TIER1:
            row = select_representative_row(table, stratum, "dominant_cta")
            assert row == stratum.rows[0]


def test_dominant_cta_policy_picks_modal_size(table_and_strata):
    table, strata = table_and_strata
    for stratum in strata:
        if stratum.tier is Tier.TIER1 or stratum.size < 10:
            continue
        row = select_representative_row(table, stratum, "dominant_cta")
        sizes, counts = np.unique(table.cta_size[stratum.rows], return_counts=True)
        assert table.cta_size[row] == sizes[np.argmax(counts)]
        # First-chronological among matching rows.
        matching = stratum.rows[table.cta_size[stratum.rows] == table.cta_size[row]]
        assert row == matching[0]


def test_max_cta_policy(table_and_strata):
    table, strata = table_and_strata
    for stratum in strata:
        if stratum.tier is Tier.TIER1:
            continue
        row = select_representative_row(table, stratum, "max_cta")
        assert table.cta_size[row] == table.cta_size[stratum.rows].max()


def test_first_policy(table_and_strata):
    table, strata = table_and_strata
    for stratum in strata:
        assert select_representative_row(table, stratum, "first") == stratum.rows[0]


def test_random_policy_is_deterministic(table_and_strata):
    table, strata = table_and_strata
    stratum = max(strata, key=lambda s: s.size)
    a = select_representative_row(table, stratum, "random")
    b = select_representative_row(table, stratum, "random")
    assert a == b
    assert a in stratum.rows


def test_centroid_policy_minimizes_insn_distance(table_and_strata):
    table, strata = table_and_strata
    for stratum in strata:
        if stratum.tier is Tier.TIER1 or stratum.size < 5:
            continue
        row = select_representative_row(table, stratum, "centroid")
        insn = table.insn_count[stratum.rows].astype(float)
        best = np.abs(insn - insn.mean()).min()
        assert abs(table.insn_count[row] - insn.mean()) == pytest.approx(best)


def test_unknown_policy_rejected(table_and_strata):
    table, strata = table_and_strata
    with pytest.raises(ValueError):
        select_representative_row(table, strata[0], "nearest-neighbor")


def test_selected_row_belongs_to_stratum(table_and_strata):
    table, strata = table_and_strata
    for stratum in strata:
        for policy in ("first", "dominant_cta", "max_cta", "random", "centroid"):
            assert select_representative_row(table, stratum, policy) in stratum.rows
