"""Tests for evaluation metrics."""

import pytest

from repro.evaluation.metrics import (
    harmonic_mean,
    prediction_error,
    relative_speedup_error,
)


def test_prediction_error_symmetric_in_magnitude():
    assert prediction_error(110, 100) == pytest.approx(0.1)
    assert prediction_error(90, 100) == pytest.approx(0.1)


def test_prediction_error_zero_when_exact():
    assert prediction_error(12345, 12345) == 0.0


def test_relative_speedup_error():
    assert relative_speedup_error(1.1, 1.0) == pytest.approx(0.1)


def test_harmonic_mean_known_value():
    assert harmonic_mean([1.0, 4.0, 4.0]) == pytest.approx(3 / 1.5)


def test_harmonic_mean_dominated_by_small_values():
    assert harmonic_mean([10.0, 10_000.0]) < 20.0


def test_harmonic_mean_rejects_nonpositive():
    with pytest.raises(ValueError):
        harmonic_mean([1.0, 0.0])


def test_prediction_error_rejects_zero_reference():
    with pytest.raises(ValueError):
        prediction_error(1.0, 0.0)
