"""Tests for the per-figure experiment drivers (small caps for speed)."""

import pytest

from repro.evaluation import experiments

CAP = 1200
LABELS = ["cactus/gru", "mlperf/ssd-resnet34"]


def test_table1_covers_all_workloads_with_cap():
    rows = experiments.table1_inventory(max_invocations=CAP)
    assert len(rows) == 40
    for row in rows:
        assert row["invocations"] == min(row["paper_invocations"], CAP)
        assert row["kernels"] == row["paper_kernels"]


def test_table2_marks_sieve_single_metric():
    rows = experiments.table2_metrics()
    assert len(rows) == 12
    sieve_metrics = [r for r in rows if r["sieve"] == "yes"]
    assert [m["characteristic"] for m in sieve_metrics] == ["instruction_count"]


def test_figure2_fractions_sum_to_one():
    rows = experiments.figure2_tiers(thetas=(0.1, 1.0), max_invocations=CAP)
    assert len(rows) == 16
    for row in rows:
        for theta in (0.1, 1.0):
            total = sum(row[f"tier{i}@{theta}"] for i in (1, 2, 3))
            assert total == pytest.approx(1.0)


def test_compare_methods_and_aggregates():
    rows = experiments.compare_methods(LABELS, max_invocations=CAP)
    assert [r.workload for r in rows] == LABELS
    accuracy = experiments.figure3_accuracy(rows)
    assert 0 <= accuracy["sieve_avg"] <= accuracy["sieve_max"]
    dispersion = experiments.figure4_dispersion(rows)
    assert dispersion["pks_avg"] >= 0
    speedup = experiments.figure6_speedup(rows)
    assert speedup["sieve_hmean"] > 1
    assert speedup["pks_hmean"] > 1


def test_figure6_excludes_gst():
    rows = experiments.compare_methods(
        ["cactus/gst", "cactus/gru"], max_invocations=CAP
    )
    aggregate = experiments.figure6_speedup(rows)
    gru = [r for r in rows if r.workload == "cactus/gru"][0]
    assert aggregate["sieve_hmean"] == pytest.approx(gru.sieve.speedup)


def test_figure5_policies():
    rows = experiments.figure5_selection_policies(LABELS[:1], max_invocations=CAP)
    row = rows[0]
    assert {"pks_first", "pks_random", "pks_centroid", "sieve"} <= set(row)
    assert all(row[k] >= 0 for k in row if k != "workload")


def test_figure7_profiling_speedups_positive():
    rows = experiments.figure7_profiling(LABELS, max_invocations=CAP)
    for row in rows:
        assert row["speedup"] > 1
        assert row["pks_days"] > row["sieve_days"]


def test_figure9_relative_rows():
    rows = experiments.figure9_relative(("cactus/gru",), max_invocations=CAP)
    row = rows[0]
    assert row["hardware"] > 0
    assert row["sieve_error"] >= 0
    assert row["pks_error"] >= 0


def test_figure10_theta_sweep_monotone_speedup_tendency():
    rows = experiments.figure10_theta_sweep(
        thetas=(0.1, 0.5, 1.0), labels=LABELS, max_invocations=CAP
    )
    assert [r["theta"] for r in rows] == [0.1, 0.5, 1.0]
    for row in rows:
        assert row["avg_error"] <= row["max_error"]
