"""Tests for the shared measurement-imputation ladder."""

import numpy as np
import pytest

from repro.core.types import Representative
from repro.evaluation import imputation
from repro.gpu.hardware import KernelMeasurement, WorkloadMeasurement
from repro.profiling.table import ProfileTable
from repro.robustness import diagnostics


def make_measurement(kernels: dict[str, tuple[list[int], list[int]]]):
    """``{name: (cycles, insns)}`` -> a WorkloadMeasurement."""
    return WorkloadMeasurement(
        workload_name="toy",
        architecture="test-arch",
        clock_ghz=1.0,
        per_kernel={
            name: KernelMeasurement(
                kernel_name=name,
                cycles=np.array(cycles, dtype=np.int64),
                insn_count=np.array(insns, dtype=np.int64),
            )
            for name, (cycles, insns) in kernels.items()
        },
    )


def make_rep(kernel_name: str, invocation_id: int) -> Representative:
    return Representative(
        kernel_name=kernel_name,
        kernel_id=0,
        invocation_id=invocation_id,
        row=0,
        weight=1.0,
        group="g0",
        group_size=1,
    )


MEASUREMENT = make_measurement(
    {
        "k0": ([100, 200, 0], [1000, 1000, 500]),
        "k1": ([0, 0], [0, 0]),
    }
)


def test_measured_ipc_clean_and_unusable_cases():
    assert imputation.measured_ipc_or_none(make_rep("k0", 0), MEASUREMENT) == 10.0
    # zero cycles, absent kernel, out-of-range invocation: all unusable
    assert imputation.measured_ipc_or_none(make_rep("k0", 2), MEASUREMENT) is None
    assert imputation.measured_ipc_or_none(make_rep("nope", 0), MEASUREMENT) is None
    assert imputation.measured_ipc_or_none(make_rep("k0", 99), MEASUREMENT) is None


def test_kernel_mean_ipc_uses_only_clean_invocations():
    # invocation 2 has zero cycles and is excluded: mean(10.0, 5.0)
    assert imputation.kernel_mean_ipc("k0", MEASUREMENT) == pytest.approx(7.5)
    assert imputation.kernel_mean_ipc("k1", MEASUREMENT) is None
    assert imputation.kernel_mean_ipc("nope", MEASUREMENT) is None


def test_measured_cycles_clean_and_unusable_cases():
    assert imputation.measured_cycles_or_none(make_rep("k0", 1), MEASUREMENT) == 200.0
    assert imputation.measured_cycles_or_none(make_rep("k0", 2), MEASUREMENT) is None
    assert imputation.measured_cycles_or_none(make_rep("nope", 0), MEASUREMENT) is None


def test_kernel_mean_cycles_excludes_zeros():
    assert imputation.kernel_mean_cycles("k0", MEASUREMENT) == pytest.approx(150.0)
    assert imputation.kernel_mean_cycles("k1", MEASUREMENT) is None
    assert imputation.kernel_mean_cycles("nope", MEASUREMENT) is None


def make_table(kernel_names, kernel_id, invocation_id) -> ProfileTable:
    n = len(kernel_id)
    return ProfileTable(
        workload="toy",
        kernel_names=tuple(kernel_names),
        kernel_id=np.array(kernel_id, dtype=np.int32),
        invocation_id=np.array(invocation_id, dtype=np.int64),
        insn_count=np.full(n, 1000, dtype=np.int64),
        cta_size=np.full(n, 128, dtype=np.int32),
        num_ctas=np.full(n, 4, dtype=np.int64),
    )


def test_cycles_in_table_order_aligns_clean_rows():
    table = make_table(("k0",), [0, 0, 0], [0, 1, 2])
    measurement = make_measurement({"k0": ([100, 200, 300], [1, 1, 1])})
    with diagnostics.capture_diagnostics() as caught:
        cycles = imputation.cycles_in_table_order(table, measurement)
    assert cycles.tolist() == [100.0, 200.0, 300.0]
    assert not caught


def test_cycles_in_table_order_imputes_kernel_mean_with_diagnostic():
    # invocation 2's cycle count is zero -> kernel mean of the clean rows
    table = make_table(("k0",), [0, 0, 0], [0, 1, 2])
    measurement = make_measurement({"k0": ([100, 200, 0], [1, 1, 1])})
    with diagnostics.capture_diagnostics() as caught:
        cycles = imputation.cycles_in_table_order(table, measurement)
    assert cycles.tolist() == [100.0, 200.0, 150.0]
    assert any(record.source == "pks.golden" for record in caught)


def test_cycles_in_table_order_workload_mean_last_resort():
    # k1 has no usable measurement at all -> workload mean of k0's rows
    table = make_table(("k0", "k1"), [0, 0, 1], [0, 1, 0])
    measurement = make_measurement({"k0": ([100, 300], [1, 1])})
    with diagnostics.capture_diagnostics() as caught:
        cycles = imputation.cycles_in_table_order(table, measurement)
    assert cycles.tolist() == [100.0, 300.0, 200.0]
    assert any(record.source == "pks.golden" for record in caught)


def test_legacy_reexports_are_the_shared_functions():
    """The historical import sites keep working and share one definition."""
    from repro.baselines import pks
    from repro.core import pipeline

    assert pipeline.kernel_mean_ipc is imputation.kernel_mean_ipc
    assert pipeline.measured_ipc_or_none is imputation.measured_ipc_or_none
    assert pks.cycles_in_table_order is imputation.cycles_in_table_order
