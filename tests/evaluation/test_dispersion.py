"""Tests for within-cluster cycle dispersion (Figure 4 metric)."""

import numpy as np
import pytest

from repro.evaluation.dispersion import weighted_cycle_cov


def test_single_tight_group():
    cycles = np.array([100.0, 100.0, 100.0])
    assert weighted_cycle_cov([np.arange(3)], cycles) == 0.0


def test_weighting_by_group_size():
    cycles = np.array([1.0, 3.0, 5.0, 5.0, 5.0, 5.0])
    groups = [np.array([0, 1]), np.array([2, 3, 4, 5])]
    # group 0: mean 2, std 1 -> CoV 0.5 (2 members); group 1: CoV 0 (4).
    expected = (0.5 * 2 + 0.0 * 4) / 6
    assert weighted_cycle_cov(groups, cycles) == pytest.approx(expected)


def test_empty_groups_skipped():
    cycles = np.array([2.0, 2.0])
    value = weighted_cycle_cov([np.array([], dtype=int), np.arange(2)], cycles)
    assert value == 0.0


def test_all_empty_rejected():
    with pytest.raises(ValueError):
        weighted_cycle_cov([np.array([], dtype=int)], np.array([1.0]))
