"""Property tests: the engine's determinism contract.

For arbitrary workload subsets, caps and thetas, the engine must produce
byte-identical pickled :class:`MethodResult`\\ s whether it runs serially,
fans out across 4 worker processes, or replays from a warm cache. This is
the contract that makes the on-disk cache *correct* (a hit is
indistinguishable from a recompute) and parallelism *safe* (no hidden
shared-RNG coupling between tasks).
"""

import pickle
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.evaluation.engine import EngineConfig, EvaluationEngine
from repro.evaluation.experiments import compare_methods
from repro.utils.hashing import stable_hash
from repro.workloads.catalog import spec_for

POOL = ("cactus/gru", "cactus/gst", "cactus/lmc", "mlperf/bert")

label_subsets = st.lists(
    st.sampled_from(POOL), min_size=1, max_size=3, unique=True
)
caps = st.sampled_from((500, 800, 1200))
thetas = st.sampled_from((0.2, 0.4, 0.8))


def result_bytes(rows):
    return [
        (row.workload, pickle.dumps(row.sieve), pickle.dumps(row.pks))
        for row in rows
    ]


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(labels=label_subsets, cap=caps, theta=thetas)
def test_serial_parallel_and_cache_warm_agree(labels, cap, theta):
    with tempfile.TemporaryDirectory(prefix="sieve-prop-cache-") as cache_dir:
        cache = Path(cache_dir)
        serial = compare_methods(
            labels, max_invocations=cap, theta=theta,
            engine=EvaluationEngine(EngineConfig(jobs=1, use_cache=False)),
        )
        parallel = compare_methods(
            labels, max_invocations=cap, theta=theta,
            engine=EvaluationEngine(
                EngineConfig(jobs=4, use_cache=True, cache_dir=cache)
            ),
        )
        warm_engine = EvaluationEngine(
            EngineConfig(jobs=1, use_cache=True, cache_dir=cache)
        )
        warm = compare_methods(
            labels, max_invocations=cap, theta=theta, engine=warm_engine
        )
        assert warm_engine.cache_stats.hits == len(labels)
        assert result_bytes(serial) == result_bytes(parallel) == result_bytes(warm)


@settings(max_examples=20, deadline=None)
@given(
    label=st.sampled_from(POOL),
    cap=st.one_of(st.none(), st.integers(min_value=100, max_value=100_000)),
    theta=st.floats(min_value=0.05, max_value=2.0, allow_nan=False),
)
def test_cache_keys_deterministic_across_processes_inputs(label, cap, theta):
    # stable_hash must not depend on interpreter hash randomization or
    # call ordering; equal inputs give equal keys, and the resolved spec
    # is part of the identity.
    from repro.core.config import SieveConfig
    from repro.evaluation.engine import EvaluationTask

    task = EvaluationTask(
        label=label, max_invocations=cap, sieve_config=SieveConfig(theta=theta)
    )
    again = EvaluationTask(
        label=label, max_invocations=cap, sieve_config=SieveConfig(theta=theta)
    )
    assert task.cache_key() == again.cache_key()
    assert spec_for(label).content_hash() == spec_for(label).content_hash()
    # the spec's own identity feeds the key, and hashing is label-sensitive
    assert stable_hash(spec_for(label)) != stable_hash(label)
