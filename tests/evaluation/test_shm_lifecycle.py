"""Lifecycle tests for the shared-memory table plane.

The contract under test (see :mod:`repro.evaluation.shm`): the engine
owns every segment it publishes and *always* unlinks them — on a normal
``close()`` (idempotently), on a process-pool failure, and when an
isolated child crashes mid-task — while workers only ever attach and
close their own mapping. "No leaked segments" is asserted the strong
way: after cleanup, attaching by name must raise ``FileNotFoundError``.
"""

import pickle

import numpy as np
import pytest

import repro.evaluation.engine as engine_mod
from repro.core.pipeline import SievePipeline
from repro.evaluation.context import build_context
from repro.evaluation.engine import (
    EngineConfig,
    EvaluationEngine,
    EvaluationTask,
    PoolFailure,
    run_task,
)
from repro.evaluation.shm import _LIVE_PLANES, _attach_segment, attached_context
from repro.observability import metrics
from repro.robustness.faults import parse_fault_plan
from repro.utils.errors import EngineError

CAP = 400


@pytest.fixture(scope="module")
def bundle():
    context = build_context("cactus/gru", max_invocations=CAP)
    return context.pks_table, context.golden


def segment_is_gone(name: str) -> bool:
    try:
        segment = _attach_segment(name)
    except FileNotFoundError:
        return True
    segment.close()
    return False


def engine_for(tmp_path, **overrides) -> EvaluationEngine:
    fields = dict(jobs=1, use_cache=False, cache_dir=tmp_path / "cache")
    fields.update(overrides)
    return EvaluationEngine(EngineConfig(**fields))


def table_task(ref, **overrides) -> EvaluationTask:
    fields = dict(label=ref.workload, methods=("sieve",), table_ref=ref)
    fields.update(overrides)
    return EvaluationTask(**fields)


def counter(name: str) -> float:
    return metrics.get_registry().counters.get(name, 0.0)


# --------------------------------------------------------------------- #
# Close semantics


def test_close_unlinks_and_is_idempotent(tmp_path, bundle):
    table, golden = bundle
    engine = engine_for(tmp_path)
    ref = engine.publish_table(table, golden)
    assert not segment_is_gone(ref.segment)
    assert engine._shm in _LIVE_PLANES

    engine.close()
    assert engine.closed
    assert segment_is_gone(ref.segment)
    assert engine._shm not in _LIVE_PLANES
    before = counter("engine.shm.unlinked")
    engine.close()  # second close: no error, no double-unlink
    assert counter("engine.shm.unlinked") == before
    with pytest.raises(EngineError):
        engine.publish_table(table, golden)


def test_context_manager_closes(tmp_path, bundle):
    table, golden = bundle
    with engine_for(tmp_path) as engine:
        ref = engine.publish_table(table, golden)
    assert engine.closed
    assert segment_is_gone(ref.segment)


def test_release_refcounts_dedup(tmp_path, bundle):
    table, golden = bundle
    with engine_for(tmp_path) as engine:
        ref = engine.publish_table(table, golden)
        dup = engine.publish_table(table, golden)
        assert dup.segment == ref.segment and dup.digest == ref.digest
        assert not engine.release_table(ref)  # one reference remains
        assert not segment_is_gone(ref.segment)
        assert engine.release_table(dup)  # last reference: unlinked
        assert segment_is_gone(ref.segment)
        assert not engine.release_table(ref)  # already gone: a no-op


# --------------------------------------------------------------------- #
# Failure paths


def test_pool_failure_leaves_no_segments(tmp_path, monkeypatch, bundle):
    """A dying pool degrades to serial; close still reaps the segment."""
    table, golden = bundle
    monkeypatch.setattr(
        engine_mod,
        "_pool_map",
        lambda jobs, tasks: (_ for _ in ()).throw(
            PoolFailure([], OSError("worker lost"))
        ),
    )
    engine = engine_for(tmp_path, jobs=4)
    ref = engine.publish_table(table, golden)
    [result] = engine.run([table_task(ref)])
    assert result.results["sieve"].error >= 0.0
    engine.close()
    assert segment_is_gone(ref.segment)


def test_crashed_isolated_child_leaves_no_segments(tmp_path, bundle):
    """A child dying via os._exit never takes the owner's segment along."""
    table, golden = bundle
    engine = engine_for(
        tmp_path,
        retry=engine_mod.RetryPolicy(
            max_attempts=1, deadline_s=60.0, backoff_base_s=0.0
        ),
    )
    ref = engine.publish_table(table, golden)
    crash = parse_fault_plan("crash:1.0", seed=3)
    [outcome] = engine.run_isolated([table_task(ref, fault_plan=crash)])
    assert outcome.status == "crash"
    assert not segment_is_gone(ref.segment)  # owner still holds it
    engine.close()
    assert segment_is_gone(ref.segment)


def test_attach_after_close_is_a_typed_miss(tmp_path, bundle):
    table, golden = bundle
    engine = engine_for(tmp_path)
    ref = engine.publish_table(table, golden)
    engine.close()
    misses = counter("engine.shm.attach_miss")
    with pytest.raises(EngineError, match="vanished"):
        run_task(table_task(ref))
    assert counter("engine.shm.attach_miss") == misses + 1


# --------------------------------------------------------------------- #
# Worker-side view discipline


def test_results_own_their_arrays_after_close(tmp_path, bundle):
    """Results must not hold live views into a closed segment."""
    table, golden = bundle
    engine = engine_for(tmp_path)
    ref = engine.publish_table(table, golden)
    results = run_task(table_task(ref))
    engine.close()
    blob = pickle.dumps(results["sieve"])  # would crash on a dead view
    assert pickle.loads(blob).workload == ref.workload


def test_attached_context_matches_direct_evaluation(tmp_path, bundle):
    """The reconstructed view is byte-equivalent to the source bundle."""
    table, golden = bundle
    with engine_for(tmp_path) as engine:
        ref = engine.publish_table(table, golden)
        with attached_context(ref) as context:
            assert np.array_equal(
                context.pks_table.insn_count, table.insn_count
            )
            shared = SievePipeline().select(context.sieve_table)
            prediction = SievePipeline().predict(shared, context.golden)
    direct_sel = SievePipeline().select(table.without_metrics())
    direct = SievePipeline().predict(direct_sel, golden)
    assert prediction.predicted_cycles == direct.predicted_cycles
