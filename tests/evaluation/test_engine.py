"""Unit tests for the parallel cached evaluation engine."""

import pickle

import pytest

from repro.core.config import SieveConfig
from repro.evaluation import experiments
from repro.evaluation.engine import (
    CACHE_SCHEMA,
    EngineConfig,
    EvaluationEngine,
    EvaluationTask,
    ResultCache,
    default_cache_dir,
    run_task,
    source_fingerprint,
)
from repro.robustness.diagnostics import capture_diagnostics
from repro.robustness.faults import parse_fault_plan
from repro.utils.errors import EngineError

CAP = 800
LABELS = ["cactus/gru", "cactus/gst"]


def task_for(label="cactus/gru", **overrides):
    fields = dict(label=label, max_invocations=CAP,
                  sieve_config=SieveConfig(theta=0.4))
    fields.update(overrides)
    return EvaluationTask(**fields)


# --------------------------------------------------------------------- #
# Task identity


def test_cache_key_is_stable():
    assert task_for("cactus/gru").cache_key() == task_for("cactus/gru").cache_key()


@pytest.mark.parametrize("overrides", [
    {"label": "cactus/gst"},
    {"max_invocations": CAP + 1},
    {"sieve_config": SieveConfig(theta=0.7)},
    {"fault_plan": parse_fault_plan("nan:0.1")},
    {"methods": ("sieve",)},
])
def test_cache_key_distinguishes_tasks(overrides):
    base = task_for()
    changed = task_for(**overrides)
    assert base.cache_key() != changed.cache_key()


def test_unknown_method_rejected():
    with pytest.raises(EngineError):
        EvaluationTask(label="cactus/gru", methods=("sieve", "bogus"))
    with pytest.raises(EngineError):
        EvaluationTask(label="cactus/gru", methods=())


def test_source_fingerprint_is_cached_and_hexlike():
    assert source_fingerprint() == source_fingerprint()
    assert len(source_fingerprint()) == 64


def test_default_cache_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("SIEVE_REPRO_CACHE_DIR", str(tmp_path / "here"))
    assert default_cache_dir() == tmp_path / "here"


# --------------------------------------------------------------------- #
# Scheduling


def test_serial_engine_matches_direct_worker(tmp_path):
    engine = EvaluationEngine(EngineConfig(jobs=1, cache_dir=tmp_path))
    tasks = [task_for(label) for label in LABELS]
    results = engine.run(tasks)
    assert [r.label for r in results] == LABELS
    for task, result in zip(tasks, results):
        direct = run_task(task)
        assert pickle.dumps(result.results) == pickle.dumps(direct)
        assert not result.from_cache


def test_cache_roundtrip_and_stats(tmp_path):
    cold = EvaluationEngine(EngineConfig(cache_dir=tmp_path))
    tasks = [task_for(label) for label in LABELS]
    first = cold.run(tasks)
    assert cold.cache_stats.misses == len(LABELS)
    assert cold.cache_stats.writes == len(LABELS)

    warm = EvaluationEngine(EngineConfig(cache_dir=tmp_path))
    second = warm.run(tasks)
    assert warm.cache_stats.hits == len(LABELS)
    assert warm.cache_stats.writes == 0
    assert all(r.from_cache for r in second)
    # Byte-identity holds per MethodResult (whole-container dumps differ
    # only in pickle memo layout, not content).
    for a, b in zip(first, second):
        for method in ("sieve", "pks"):
            assert pickle.dumps(a[method]) == pickle.dumps(b[method])


def test_mixed_hits_preserve_input_order(tmp_path):
    engine = EvaluationEngine(EngineConfig(cache_dir=tmp_path))
    engine.run([task_for("cactus/gst")])  # warm one of the two
    results = EvaluationEngine(EngineConfig(cache_dir=tmp_path)).run(
        [task_for("cactus/gru"), task_for("cactus/gst")]
    )
    assert [r.label for r in results] == ["cactus/gru", "cactus/gst"]
    assert [r.from_cache for r in results] == [False, True]


def test_uncached_engine_has_no_cache(tmp_path):
    engine = EvaluationEngine(EngineConfig(use_cache=False, cache_dir=tmp_path))
    engine.run([task_for("cactus/gru")])
    assert engine.cache_stats is None
    assert list(tmp_path.iterdir()) == []


def test_bad_jobs_rejected():
    with pytest.raises(EngineError):
        EngineConfig(jobs=0)


def test_pool_failure_degrades_to_serial(tmp_path, monkeypatch):
    import repro.evaluation.engine as engine_module
    from repro.observability import manifest as obs_manifest

    def broken_pool(jobs, tasks):
        raise OSError("fork bomb protection")

    monkeypatch.setattr(engine_module, "_pool_map", broken_pool)
    engine = EvaluationEngine(EngineConfig(jobs=4, cache_dir=tmp_path))
    events_mark = obs_manifest.events_mark()
    with capture_diagnostics() as caught:
        results = engine.run([task_for(label) for label in LABELS])
    assert [r.label for r in results] == LABELS
    # The degradation reaches diagnostics AND the manifest event stream,
    # both carrying the originating exception's repr.
    engine_diags = [c for c in caught if c.source == "engine"]
    assert engine_diags
    assert "OSError('fork bomb protection')" in engine_diags[0].message
    failures = [
        e for e in obs_manifest.events(since=events_mark)
        if e["kind"] == "engine.pool_failure"
    ]
    assert failures
    assert failures[0]["exception"] == "OSError('fork bomb protection')"
    assert failures[0]["tasks"] == len(LABELS)

    strict = EvaluationEngine(
        EngineConfig(jobs=4, cache_dir=tmp_path / "strict", serial_fallback=False)
    )
    with pytest.raises(OSError):
        strict.run([task_for(label, max_invocations=CAP + 16) for label in LABELS])


def test_worker_exception_propagates(tmp_path):
    engine = EvaluationEngine(EngineConfig(jobs=1, cache_dir=tmp_path))
    with pytest.raises(KeyError):
        engine.run([task_for("no-such-suite/no-such-workload")])


# --------------------------------------------------------------------- #
# Cache robustness


def test_corrupt_entry_recomputed_and_dropped(tmp_path):
    task = task_for("cactus/gru")
    EvaluationEngine(EngineConfig(cache_dir=tmp_path)).run([task])
    cache = ResultCache(tmp_path)
    [entry] = cache.entries()
    entry.write_bytes(b"\x00 not a pickle")
    with capture_diagnostics() as caught:
        engine = EvaluationEngine(EngineConfig(cache_dir=tmp_path))
        [result] = engine.run([task])
    assert not result.from_cache
    assert engine.cache_stats.invalid == 1
    assert any(c.source == "engine.cache" for c in caught)
    # the torn entry was replaced by a fresh, readable one
    fresh = ResultCache(tmp_path)
    assert fresh.get(task.cache_key()) is not None


def test_stale_schema_treated_as_miss(tmp_path):
    task = task_for("cactus/gru")
    key = task.cache_key()
    cache = ResultCache(tmp_path)
    cache.put(key, run_task(task))
    path = cache.path_for(key)
    payload = pickle.loads(path.read_bytes())
    payload["schema"] = CACHE_SCHEMA + 1
    path.write_bytes(pickle.dumps(payload))
    probe = ResultCache(tmp_path)
    assert probe.get(key) is None
    assert probe.stats.invalid == 1


def test_writes_are_atomic_no_temp_leftovers(tmp_path):
    cache = ResultCache(tmp_path)
    task = task_for("cactus/gru")
    cache.put(task.cache_key(), run_task(task))
    leftovers = [p for p in tmp_path.rglob("*") if p.name.startswith(".tmp-")]
    assert leftovers == []
    assert len(cache.entries()) == 1


def test_write_failure_is_survivable(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)

    def refuse(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr("tempfile.mkstemp", refuse)
    with capture_diagnostics() as caught:
        cache.put(task_for("cactus/gru").cache_key(), run_task(task_for("cactus/gru")))
    assert cache.stats.writes == 0
    assert any("cache write failed" in c.message for c in caught)


def test_unusable_cache_directory_raises(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file, not a directory")
    with pytest.raises(EngineError):
        ResultCache(blocker / "cache")


def test_clear_and_size(tmp_path):
    cache = ResultCache(tmp_path)
    for label in LABELS:
        cache.put(task_for(label).cache_key(), run_task(task_for(label)))
    assert cache.size_bytes() > 0
    assert cache.clear() == len(LABELS)
    assert cache.entries() == []


# --------------------------------------------------------------------- #
# Experiment integration


def test_compare_methods_engine_matches_plain(tmp_path):
    plain = experiments.compare_methods(LABELS, max_invocations=CAP)
    engine = EvaluationEngine(EngineConfig(jobs=2, cache_dir=tmp_path))
    routed = experiments.compare_methods(LABELS, max_invocations=CAP, engine=engine)
    rerouted = experiments.compare_methods(
        LABELS, max_invocations=CAP,
        engine=EvaluationEngine(EngineConfig(cache_dir=tmp_path)),
    )
    for a, b, c in zip(plain, routed, rerouted):
        assert a.workload == b.workload == c.workload
        assert pickle.dumps(a.sieve) == pickle.dumps(b.sieve) == pickle.dumps(c.sieve)
        assert pickle.dumps(a.pks) == pickle.dumps(b.pks) == pickle.dumps(c.pks)
