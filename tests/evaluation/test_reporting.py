"""Tests for text-table reporting."""

from repro.evaluation.reporting import format_table, percent, times


def test_format_table_alignment():
    text = format_table(["name", "value"], [("a", 1), ("longer", 22)])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert len(lines) == 4
    # Columns align: 'value' entries start at the same offset.
    assert lines[2].index("1") == lines[3].index("2")


def test_float_formatting():
    text = format_table(["x"], [(0.123456,), (123456.0,), (0.000123,)])
    assert "0.12" in text
    assert "1.23e+05" in text


def test_percent_and_times():
    assert percent(0.1234) == "12.34%"
    assert times(1272.4) == "1,272x"
