"""Property tests: the registry path is byte-identical to the old runners.

``evaluate_method("sieve"|"pks", ...)`` replaced hand-written
``evaluate_sieve``/``evaluate_pks``; the refactor is only safe if the
generic path produces *pickle-byte-identical* :class:`MethodResult`\\ s.
These tests inline the pre-refactor implementations verbatim (modulo
observability spans, which never reach the result) and compare against
the registry path across arbitrary workloads, caps and configs — the
same guarantee that keeps the committed fig3/4/6 goldens unchanged.
"""

import dataclasses
import pickle

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.pks import PksConfig, PksPipeline
from repro.core.config import SieveConfig
from repro.core.pipeline import SievePipeline
from repro.evaluation.context import build_context
from repro.evaluation.dispersion import weighted_cycle_cov
from repro.evaluation.imputation import cycles_in_table_order
from repro.evaluation.metrics import prediction_error, simulation_speedup
from repro.evaluation.runner import MethodResult, evaluate_method

POOL = ("cactus/gru", "cactus/lmc", "mlperf/bert")


def strip_attribution(result: MethodResult) -> MethodResult:
    """Drop the attribution the registry path now attaches.

    The legacy bodies below predate error attribution; the equivalence
    guarantee is about selection/prediction numerics, which the pickle
    compare still covers byte-for-byte. Attribution correctness has its
    own property tests (``tests/observability/test_attribution.py``).
    """
    return dataclasses.replace(result, attribution=None)


def legacy_evaluate_sieve(context, config=None) -> MethodResult:
    """The pre-refactor ``evaluate_sieve`` body, inlined verbatim."""
    pipeline = SievePipeline(config)
    selection = pipeline.select(context.sieve_table)
    prediction = pipeline.predict(selection, context.golden)
    cycles = cycles_in_table_order(context.sieve_table, context.golden)
    cov = weighted_cycle_cov((s.rows for s in selection.strata), cycles)
    return MethodResult(
        workload=context.label,
        method=selection.method,
        error=prediction_error(prediction.predicted_cycles, context.truth.total_cycles),
        speedup=simulation_speedup(selection, context.golden),
        num_representatives=selection.num_representatives,
        cycle_cov=cov,
        predicted_cycles=prediction.predicted_cycles,
        measured_cycles=context.truth.total_cycles,
        selection=selection,
    )


def legacy_evaluate_pks(context, config=None) -> MethodResult:
    """The pre-refactor ``evaluate_pks`` body, inlined verbatim."""
    pipeline = PksPipeline(config)
    selection = pipeline.select(context.pks_table, context.golden)
    prediction = pipeline.predict(selection, context.golden)
    cycles = cycles_in_table_order(context.pks_table, context.golden)
    cov = weighted_cycle_cov(selection.cluster_rows, cycles)
    return MethodResult(
        workload=context.label,
        method=selection.method,
        error=prediction_error(prediction.predicted_cycles, context.truth.total_cycles),
        speedup=simulation_speedup(selection, context.golden),
        num_representatives=selection.num_representatives,
        cycle_cov=cov,
        predicted_cycles=prediction.predicted_cycles,
        measured_cycles=context.truth.total_cycles,
        selection=selection,
    )


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    label=st.sampled_from(POOL),
    cap=st.sampled_from((500, 900, 1500)),
    theta=st.sampled_from((0.1, 0.4, 1.0)),
)
def test_evaluate_method_sieve_byte_identical_to_legacy(label, cap, theta):
    context = build_context(label, max_invocations=cap)
    config = SieveConfig(theta=theta)
    generic = evaluate_method("sieve", context, config)
    legacy = legacy_evaluate_sieve(context, config)
    assert pickle.dumps(strip_attribution(generic)) == pickle.dumps(legacy)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    label=st.sampled_from(POOL),
    cap=st.sampled_from((500, 900)),
    policy=st.sampled_from(("first", "random", "centroid")),
)
def test_evaluate_method_pks_byte_identical_to_legacy(label, cap, policy):
    context = build_context(label, max_invocations=cap)
    config = PksConfig(selection_policy=policy)
    generic = evaluate_method("pks", context, config)
    legacy = legacy_evaluate_pks(context, config)
    assert pickle.dumps(strip_attribution(generic)) == pickle.dumps(legacy)


def test_default_config_matches_legacy_default(small_context):
    """``config=None`` resolves to the same defaults the old path used."""
    assert pickle.dumps(
        strip_attribution(evaluate_method("sieve", small_context))
    ) == pickle.dumps(legacy_evaluate_sieve(small_context))
    assert pickle.dumps(
        strip_attribution(evaluate_method("pks", small_context))
    ) == pickle.dumps(legacy_evaluate_pks(small_context))
