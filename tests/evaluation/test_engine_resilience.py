"""Resilience tests for the hardened evaluation engine.

Covers the failure paths the fuzz campaign leans on: partial-result
reuse when the process pool dies mid-run, crash isolation with bounded
retries and deadlines, the quarantine strike list, and the determinism
contract under injected task-surface faults (``jobs=1`` and ``jobs=4``
must produce byte-identical surviving results).
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.evaluation.engine as engine_mod
from repro.evaluation.engine import (
    EngineConfig,
    EvaluationEngine,
    EvaluationTask,
    PoolFailure,
    Quarantine,
    RetryPolicy,
    TaskOutcome,
    run_task,
)
from repro.robustness.faults import parse_fault_plan
from repro.utils.errors import EngineError, TaskCrashError

CAP = 500
LABELS = ["cactus/gru", "cactus/gst"]
FAST = RetryPolicy(max_attempts=2, deadline_s=60.0, backoff_base_s=0.0)


def task_for(label="cactus/gru", **overrides):
    fields = dict(label=label, max_invocations=CAP, methods=("sieve",))
    fields.update(overrides)
    return EvaluationTask(**fields)


def engine_for(tmp_path, jobs=1, use_cache=True, **overrides):
    fields = dict(
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=tmp_path / "cache",
        quarantine_path=tmp_path / "quarantine.json",
        retry=FAST,
    )
    fields.update(overrides)
    return EvaluationEngine(EngineConfig(**fields))


# --------------------------------------------------------------------- #
# Satellite: partial-result reuse on pool failure


def test_pool_failure_reuses_completed_results(tmp_path, monkeypatch):
    """A pool that dies after task 1 of 2 must not recompute task 1."""
    tasks = [task_for(label) for label in LABELS]
    first = run_task(tasks[0])

    def dying_pool(jobs, pool_tasks):
        raise PoolFailure([first], OSError("worker lost"))

    monkeypatch.setattr(engine_mod, "_pool_map", dying_pool)
    recomputed = []
    real_run_task = run_task
    monkeypatch.setattr(
        engine_mod,
        "run_task",
        lambda task: recomputed.append(task.label) or real_run_task(task),
    )

    engine = engine_for(tmp_path, jobs=2)
    results = engine.run(tasks)
    assert [r.label for r in results] == LABELS
    # Only the task *after* the failure point ran serially.
    assert recomputed == [LABELS[1]]
    assert pickle.dumps(results[0].results) == pickle.dumps(first)

    # Cache re-emission: the reused prefix was written through too, so a
    # fresh engine on the same cache serves everything warm.
    warm = engine_for(tmp_path, jobs=1)
    replay = warm.run(tasks)
    assert all(r.from_cache for r in replay)
    for before, after in zip(results, replay):
        assert pickle.dumps(before.results) == pickle.dumps(after.results)


def test_pool_failure_without_fallback_reraises_cause(tmp_path, monkeypatch):
    cause = OSError("worker lost")
    monkeypatch.setattr(
        engine_mod,
        "_pool_map",
        lambda jobs, tasks: (_ for _ in ()).throw(PoolFailure([], cause)),
    )
    engine = engine_for(tmp_path, jobs=2, serial_fallback=False)
    with pytest.raises(OSError) as excinfo:
        engine.run([task_for(label) for label in LABELS])
    assert excinfo.value is cause


# --------------------------------------------------------------------- #
# Retry policy / outcome plumbing


def test_retry_policy_validation():
    with pytest.raises(EngineError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(EngineError):
        RetryPolicy(deadline_s=0.0)
    with pytest.raises(EngineError):
        RetryPolicy(backoff_factor=0.5)
    policy = RetryPolicy(backoff_base_s=0.05, backoff_factor=2.0)
    assert policy.backoff(0) == pytest.approx(0.05)
    assert policy.backoff(2) == pytest.approx(0.2)


def test_failed_outcome_indexing_raises_typed_error():
    outcome = TaskOutcome("cactus/gru", "crash", error="exitcode=13")
    assert not outcome.ok
    with pytest.raises(TaskCrashError):
        outcome["sieve"]


# --------------------------------------------------------------------- #
# Crash isolation


def test_run_isolated_matches_run_when_healthy(tmp_path):
    engine = engine_for(tmp_path, use_cache=False)
    tasks = [task_for(label) for label in LABELS]
    outcomes = engine.run_isolated(tasks)
    plain = engine.run(tasks)
    assert [o.status for o in outcomes] == ["ok", "ok"]
    assert [o.attempts for o in outcomes] == [1, 1]
    for outcome, result in zip(outcomes, plain):
        assert pickle.dumps(dict(outcome.results)) == pickle.dumps(result.results)


def test_crashing_task_fails_alone_and_is_quarantined(tmp_path):
    """A worker dying via os._exit costs one task, then strikes it out."""
    plan = parse_fault_plan("crash:1.0", seed=3)
    tasks = [
        task_for(LABELS[0], fault_plan=plan),
        task_for(LABELS[1]),
    ]
    engine = engine_for(tmp_path)
    outcomes = engine.run_isolated(tasks)
    assert outcomes[0].status == "crash"
    assert outcomes[0].attempts == FAST.max_attempts
    assert "exitcode" in outcomes[0].error
    assert outcomes[1].ok

    # Second failing run reaches the threshold (2): third run skips it.
    engine.run_isolated(tasks[:1])
    assert engine.quarantine.is_quarantined("task", LABELS[0])
    skipped = engine.run_isolated(tasks[:1])
    assert skipped[0].status == "quarantined"
    assert skipped[0].attempts == 0

    # The quarantine survives engine restart via its JSON file.
    reborn = engine_for(tmp_path)
    assert reborn.quarantine.is_quarantined("task", LABELS[0])
    assert ("task", LABELS[0], 2) in reborn.quarantine.entries()
    assert reborn.quarantine.clear("task") == 1
    assert not reborn.quarantine.is_quarantined("task", LABELS[0])


def test_hanging_task_times_out_per_attempt(tmp_path):
    plan = parse_fault_plan("hang:1.0", seed=5)
    engine = engine_for(tmp_path, use_cache=False)
    policy = RetryPolicy(max_attempts=2, deadline_s=1.5, backoff_base_s=0.0)
    outcomes = engine.run_isolated([task_for(fault_plan=plan)], policy=policy)
    assert outcomes[0].status == "timeout"
    assert outcomes[0].attempts == 2
    assert "deadline" in outcomes[0].error


def test_injected_task_error_is_reported(tmp_path):
    plan = parse_fault_plan("task_error:1.0", seed=9)
    engine = engine_for(tmp_path, use_cache=False)
    outcomes = engine.run_isolated([task_for(fault_plan=plan)])
    assert outcomes[0].status == "error"
    assert "injected task fault" in outcomes[0].error


def test_isolated_results_are_cached_for_plain_run(tmp_path):
    engine = engine_for(tmp_path)
    task = task_for()
    outcomes = engine.run_isolated([task])
    assert outcomes[0].ok and not outcomes[0].from_cache
    again = engine.run_isolated([task])
    assert again[0].from_cache
    plain = engine.run([task])
    assert plain[0].from_cache
    assert pickle.dumps(dict(outcomes[0].results)) == pickle.dumps(plain[0].results)


# --------------------------------------------------------------------- #
# Quarantine bookkeeping


def test_quarantine_strikes_persist_and_round_trip(tmp_path):
    path = tmp_path / "q.json"
    quarantine = Quarantine(path, threshold=2)
    assert quarantine.strike("task", "a/b") == 1
    assert not quarantine.is_quarantined("task", "a/b")
    assert quarantine.strike("task", "a/b") == 2
    assert quarantine.is_quarantined("task", "a/b")
    quarantine.strike("cache", "deadbeef")

    reloaded = Quarantine(path, threshold=2)
    assert reloaded.entries() == [("cache", "deadbeef", 1), ("task", "a/b", 2)]
    assert reloaded.clear() == 2
    assert Quarantine(path, threshold=2).entries() == []


def test_quarantine_rejects_unknown_kind(tmp_path):
    quarantine = Quarantine(tmp_path / "q.json")
    with pytest.raises(EngineError):
        quarantine.strike("bogus", "x")


def test_corrupt_cache_entry_strikes_and_quarantined_key_not_rewritten(tmp_path):
    engine = engine_for(tmp_path)
    task = task_for()
    key = task.cache_key()
    path = engine.cache.path_for(key)

    for expected_strikes in (1, 2):
        engine.run([task])
        assert path.exists()
        path.write_bytes(b"garbage")
        engine.run([task])  # drops the corrupt entry -> one cache strike
        strikes = dict(
            ((kind, ident), count)
            for kind, ident, count in engine.quarantine.entries()
        )
        assert strikes.get(("cache", key)) == expected_strikes

    # Two strikes -> quarantined: the key is no longer written through.
    assert engine.quarantine.is_quarantined("cache", key)
    engine.run([task])
    assert not path.exists()


# --------------------------------------------------------------------- #
# Satellite: determinism under injected chaos (hypothesis)


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    plan_text=st.sampled_from(
        ("crash:0.5", "task_error:0.6", "crash:0.4,task_error:0.4")
    ),
)
def test_chaos_survivors_identical_serial_vs_parallel(tmp_path_factory, seed, plan_text):
    """Sabotage depends only on (plan.seed, label, attempt), never on
    scheduling: jobs=1 and jobs=4 agree on statuses, attempt counts and
    the exact bytes of every surviving result."""
    plan = parse_fault_plan(plan_text, seed=seed)
    tasks = [task_for(label, fault_plan=plan) for label in LABELS]

    def outcomes_with(jobs):
        tmp = tmp_path_factory.mktemp("chaos")
        engine = engine_for(tmp, jobs=jobs, use_cache=False)
        return engine.run_isolated(tasks, policy=FAST)

    serial = outcomes_with(1)
    parallel = outcomes_with(4)
    assert [(o.label, o.status, o.attempts) for o in serial] == [
        (o.label, o.status, o.attempts) for o in parallel
    ]
    for left, right in zip(serial, parallel):
        if left.ok:
            assert pickle.dumps(dict(left.results)) == pickle.dumps(
                dict(right.results)
            )
