"""Golden-figure regression suite.

Pins the regenerated Figure 3 (accuracy), Figure 4 (dispersion) and
Figure 6 (speedup) aggregates at reduced scale against committed JSON
snapshots, on both the serial path and the parallel+cached engine path.
Any pipeline change that moves the paper numbers fails here first;
deliberate moves are re-snapshotted with ``scripts/regen_goldens.py``.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
GOLDENS_DIR = Path(__file__).resolve().parent / "goldens"

sys.path.insert(0, str(REPO_ROOT / "scripts"))
from regen_goldens import FIGURES, GOLDEN_CAP, GOLDEN_THETA, golden_rows  # noqa: E402

#: Results are seed-deterministic; the tolerance only absorbs float
#: reassociation across BLAS/numpy builds, not algorithmic drift.
RTOL = 1e-6

FIGURE_NAMES = sorted(FIGURES)


@pytest.fixture(scope="module")
def serial_rows():
    return golden_rows()


@pytest.fixture(scope="module")
def engine_rows(tmp_path_factory):
    from repro.evaluation.engine import EngineConfig, EvaluationEngine
    from repro.evaluation.experiments import compare_methods

    cache = tmp_path_factory.mktemp("golden-cache")
    kwargs = dict(max_invocations=GOLDEN_CAP, theta=GOLDEN_THETA)
    engine = EvaluationEngine(EngineConfig(jobs=2, use_cache=True, cache_dir=cache))
    cold = compare_methods(engine=engine, **kwargs)
    warm_engine = EvaluationEngine(EngineConfig(jobs=1, cache_dir=cache))
    warm = compare_methods(engine=warm_engine, **kwargs)
    assert warm_engine.cache_stats.hits == len(cold)
    return cold, warm


def load_golden(name: str) -> dict:
    return json.loads((GOLDENS_DIR / f"{name}.json").read_text())


@pytest.mark.parametrize("name", FIGURE_NAMES)
def test_golden_matches_serial_regeneration(name, serial_rows):
    golden = load_golden(name)
    assert golden["cap"] == GOLDEN_CAP
    assert golden["theta"] == GOLDEN_THETA
    assert golden["workloads"] == [row.workload for row in serial_rows]
    regenerated = FIGURES[name](serial_rows)
    assert set(regenerated) == set(golden["values"])
    for key, value in regenerated.items():
        assert value == pytest.approx(golden["values"][key], rel=RTOL), (
            f"{name}.{key} drifted: golden {golden['values'][key]!r}, "
            f"regenerated {value!r} — if deliberate, rerun "
            "scripts/regen_goldens.py and commit the diff"
        )


@pytest.mark.parametrize("name", FIGURE_NAMES)
def test_golden_matches_engine_paths(name, engine_rows):
    golden = load_golden(name)["values"]
    cold, warm = engine_rows
    for rows in (cold, warm):
        regenerated = FIGURES[name](rows)
        for key, value in regenerated.items():
            assert value == pytest.approx(golden[key], rel=RTOL)
