"""Tests for evaluation contexts and method runners."""

import numpy as np
import pytest

from repro.core.config import SieveConfig
from repro.evaluation.context import build_context
from repro.evaluation.runner import (
    evaluate_pks,
    evaluate_sieve,
    hardware_speedup_between,
    predicted_speedup_between,
    sieve_tier_fractions,
)
from repro.gpu import TURING_RTX2080TI


def test_context_respects_cap(small_context):
    assert len(small_context.sieve_table) == 1500
    assert small_context.run.num_invocations == 1500


def test_context_is_cached(small_context):
    again = build_context("cactus/gru", max_invocations=1500)
    assert again is small_context


def test_context_tables_consistent(small_context):
    assert np.array_equal(
        small_context.sieve_table.insn_count, small_context.pks_table.insn_count
    )
    assert small_context.sieve_table.metrics is None
    assert small_context.pks_table.metrics is not None


def test_evaluate_sieve_scorecard(small_context):
    result = evaluate_sieve(small_context)
    assert result.method == "sieve"
    assert 0 <= result.error < 0.2
    assert result.speedup > 5
    assert result.num_representatives >= small_context.run.spec.num_kernels
    assert result.measured_cycles == small_context.golden.total_cycles


def test_evaluate_pks_scorecard(small_context):
    result = evaluate_pks(small_context)
    assert result.method == "pks-first"
    assert result.error >= 0
    assert result.cycle_cov >= 0
    assert result.num_representatives <= 20


def test_sieve_beats_pks_dispersion(small_context):
    sieve = evaluate_sieve(small_context)
    pks = evaluate_pks(small_context)
    assert sieve.cycle_cov <= pks.cycle_cov + 0.05


def test_tier_fractions_sum_to_one(small_context):
    for theta in (0.1, 0.4, 1.0):
        fractions = sieve_tier_fractions(small_context, theta)
        assert fractions.sum() == pytest.approx(1.0)
    # Tier-3 mass cannot grow with theta.
    t3 = [sieve_tier_fractions(small_context, t)[2] for t in (0.1, 0.5, 1.0)]
    assert t3[0] >= t3[1] >= t3[2]


def test_theta_config_respected(small_context):
    tight = evaluate_sieve(small_context, SieveConfig(theta=0.1))
    loose = evaluate_sieve(small_context, SieveConfig(theta=1.0))
    assert tight.num_representatives >= loose.num_representatives


def test_cross_architecture_speedups(small_context):
    turing = small_context.measure_on(TURING_RTX2080TI)
    hardware = hardware_speedup_between(small_context.golden, turing)
    assert hardware > 0
    sieve = evaluate_sieve(small_context)
    predicted = predicted_speedup_between(
        sieve.selection, "sieve", small_context.golden, turing
    )
    assert predicted == pytest.approx(hardware, rel=0.15)


def test_predicted_speedup_method_dispatch(small_context):
    """"sieve" must route through SievePipeline, everything else to PKS."""
    from repro.baselines.pks import PksPipeline
    from repro.core.pipeline import SievePipeline

    turing = small_context.measure_on(TURING_RTX2080TI)
    golden = small_context.golden

    def expected(pipe, selection):
        base = pipe.predict(selection, golden).predicted_cycles
        other = pipe.predict(selection, turing).predicted_cycles
        return (other / (turing.clock_ghz * 1e9)) / (base / (golden.clock_ghz * 1e9))

    sieve = evaluate_sieve(small_context)
    via_sieve = predicted_speedup_between(sieve.selection, "sieve", golden, turing)
    assert via_sieve == pytest.approx(expected(SievePipeline(), sieve.selection))

    pks = evaluate_pks(small_context)
    via_pks = predicted_speedup_between(pks.selection, "pks", golden, turing)
    assert via_pks == pytest.approx(expected(PksPipeline(), pks.selection))


def test_predicted_speedup_clock_conversion(small_context):
    """With identical cycle counts, speedup reduces to the clock ratio."""
    import dataclasses

    golden = small_context.golden
    sieve = evaluate_sieve(small_context)
    for factor in (0.5, 2.0):
        faster = dataclasses.replace(golden, clock_ghz=golden.clock_ghz * factor)
        predicted = predicted_speedup_between(
            sieve.selection, "sieve", golden, faster
        )
        # same cycles on both sides -> other/base seconds = 1/factor
        assert predicted == pytest.approx(1.0 / factor)


def test_hardware_speedup_is_wall_time_ratio(small_context):
    import dataclasses

    golden = small_context.golden
    turing = small_context.measure_on(TURING_RTX2080TI)
    assert hardware_speedup_between(golden, turing) == pytest.approx(
        turing.wall_time_seconds / golden.wall_time_seconds
    )
    # pure clock change: wall time scales inversely with the clock
    doubled = dataclasses.replace(golden, clock_ghz=golden.clock_ghz * 2)
    assert hardware_speedup_between(golden, doubled) == pytest.approx(0.5)
    assert hardware_speedup_between(doubled, golden) == pytest.approx(2.0)


def test_tier_fractions_empty_profile_raises_typed_error():
    """0/0 tier fractions must be a SelectionError, not silent NaN."""
    from types import SimpleNamespace

    from repro.profiling.table import ProfileTable
    from repro.utils.errors import ReproError, SelectionError

    empty = ProfileTable(
        workload="empty",
        kernel_names=("k0",),
        kernel_id=np.array([], dtype=np.int32),
        invocation_id=np.array([], dtype=np.int64),
        insn_count=np.array([], dtype=np.int64),
        cta_size=np.array([], dtype=np.int32),
        num_ctas=np.array([], dtype=np.int64),
    )
    context = SimpleNamespace(sieve_table=empty, label="testsuite/empty")
    with pytest.raises(SelectionError, match="no invocations"):
        sieve_tier_fractions(context, theta=0.4)
    # it participates in the typed hierarchy (and stays a ValueError)
    assert issubclass(SelectionError, ReproError)
    assert issubclass(SelectionError, ValueError)
