"""Accumulator and reservoir unit tests: merge math and split invariance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming.accumulators import ChunkStats, KernelAccumulators, ReservoirStore
from repro.utils.segments import Segments
from repro.utils.stats import coefficient_of_variation


def _stats_for(values: np.ndarray) -> ChunkStats:
    """One-kernel ChunkStats over ``values`` (already positive)."""
    values = np.asarray(values, dtype=np.int64)
    mean = float(values.mean())
    deviations = values.astype(np.float64) - mean
    return ChunkStats(
        counts=np.array([len(values)], dtype=np.int64),
        insn_sum=np.array([values.sum()], dtype=np.int64),
        raw_sum=np.array([values.sum()], dtype=np.int64),
        bad=np.zeros(1, dtype=np.int64),
        min_insn=np.array([values.min()], dtype=np.int64),
        max_insn=np.array([values.max()], dtype=np.int64),
        mean=np.array([mean]),
        m2=np.array([float((deviations * deviations).sum())]),
        max_cta=np.array([128], dtype=np.int64),
    )


def _register(acc: KernelAccumulators, name: str = "k") -> int:
    [slot] = acc.slots_for((name,), np.array([0], dtype=np.int64))
    return int(slot)


@pytest.mark.parametrize("splits", [1, 2, 3, 7, 50])
def test_welford_merge_matches_direct_statistics(splits):
    rng = np.random.default_rng(7)
    values = rng.integers(1, 10_000, 500).astype(np.int64)
    acc = KernelAccumulators()
    slot = _register(acc)
    for piece in np.array_split(values, splits):
        if len(piece) == 0:
            continue
        acc.merge(np.array([slot]), _stats_for(piece))
    assert int(acc.count[slot]) == len(values)
    assert int(acc.insn_sum[slot]) == int(values.sum())
    assert int(acc.min_insn[slot]) == int(values.min())
    assert int(acc.max_insn[slot]) == int(values.max())
    np.testing.assert_allclose(acc.mean[slot], values.mean(), rtol=1e-12)
    direct_cov = coefficient_of_variation(values)
    np.testing.assert_allclose(acc.welford_cov(slot), direct_cov, rtol=1e-9)


def test_welford_merge_from_zero_state_and_single_value():
    acc = KernelAccumulators()
    slot = _register(acc)
    acc.merge(np.array([slot]), _stats_for(np.array([42])))
    assert acc.welford_cov(slot) == 0.0
    assert int(acc.count[slot]) == 1


def test_accumulators_grow_past_initial_capacity():
    acc = KernelAccumulators()
    names = tuple(f"k{i:04d}" for i in range(300))
    slots = acc.slots_for(names, np.arange(300, dtype=np.int64))
    assert len(acc) == 300
    assert [acc.names[int(s)] for s in slots] == list(names)
    # Re-registering returns the same slots (stable identity).
    again = acc.slots_for(names, np.arange(300, dtype=np.int64))
    assert np.array_equal(np.asarray(slots), np.asarray(again))


def _feed(store: ReservoirStore, slot: int, rows, inv, insn, cta, splits: int):
    bounds = np.linspace(0, len(rows), splits + 1).astype(int)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi > lo:
            store.append(slot, "k", rows[lo:hi], inv[lo:hi], insn[lo:hi], cta[lo:hi])


@pytest.mark.parametrize("splits", [1, 2, 5, 17])
def test_bounded_reservoir_is_chunk_split_invariant(splits):
    """Algorithm R draws one rng value per post-capacity arrival in arrival
    order, so the retained sample is a function of the arrival sequence
    alone — never of how the sequence was cut into chunks. This pins the
    vectorized ``rng.integers(0, arrivals + 1)`` element order."""
    n, capacity = 1000, 64
    rows = np.arange(n, dtype=np.int64)
    inv = np.arange(n, dtype=np.int64)
    insn = np.arange(1, n + 1, dtype=np.int64)
    cta = np.full(n, 128, dtype=np.int64)

    whole = ReservoirStore("wl", capacity)
    whole.append(0, "k", rows, inv, insn, cta)
    split = ReservoirStore("wl", capacity)
    _feed(split, 0, rows, inv, insn, cta, splits)

    for a, b in zip(whole.retained(0), split.retained(0)):
        np.testing.assert_array_equal(a, b)
    assert whole.retained_count(0) == capacity
    assert not whole.complete(0)


def test_bounded_reservoir_retains_chronological_order():
    n, capacity = 500, 32
    rng_rows = np.arange(n, dtype=np.int64)
    store = ReservoirStore("wl", capacity)
    store.append(0, "k", rng_rows, rng_rows, rng_rows + 1, rng_rows % 7)
    rows, inv, insn, cta = store.retained(0)
    assert len(rows) == capacity
    assert np.all(np.diff(rows) > 0), "retained sample must stay chronological"
    np.testing.assert_array_equal(rows, inv)
    np.testing.assert_array_equal(insn, rows + 1)
    np.testing.assert_array_equal(cta, rows % 7)


def test_unbounded_reservoir_keeps_everything_and_is_complete():
    store = ReservoirStore("wl", None)
    for lo in range(0, 100, 10):
        rows = np.arange(lo, lo + 10, dtype=np.int64)
        store.append(0, "k", rows, rows, rows + 1, rows % 3)
    rows, inv, insn, cta = store.retained(0)
    np.testing.assert_array_equal(rows, np.arange(100))
    assert store.complete(0)
    assert not store.bounded
    assert store.resident_rows() == 100


def test_bounded_reservoir_under_capacity_is_complete_and_exact():
    store = ReservoirStore("wl", 64)
    rows = np.arange(40, dtype=np.int64)
    store.append(0, "k", rows, rows, rows + 1, rows % 3)
    assert store.complete(0)
    got_rows, _, _, _ = store.retained(0)
    np.testing.assert_array_equal(got_rows, rows)


def test_reservoirs_are_independent_across_kernels():
    """Each kernel draws from its own named rng stream: feeding kernel B
    must not perturb kernel A's retained sample."""
    n, capacity = 400, 16
    rows = np.arange(n, dtype=np.int64)
    solo = ReservoirStore("wl", capacity)
    solo.append(0, "a", rows, rows, rows + 1, rows % 5)

    mixed = ReservoirStore("wl", capacity)
    mixed.append(0, "a", rows[:200], rows[:200], rows[:200] + 1, rows[:200] % 5)
    mixed.append(1, "b", rows, rows, rows + 2, rows % 3)
    mixed.append(0, "a", rows[200:], rows[200:], rows[200:] + 1, rows[200:] % 5)

    for a, b in zip(solo.retained(0), mixed.retained(0)):
        np.testing.assert_array_equal(a, b)
