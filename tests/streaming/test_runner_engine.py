"""Streaming evaluation plumbing: runner parity, engine tasks, metrics."""

from __future__ import annotations

import pickle

import pytest

from repro.evaluation.engine import EvaluationTask, run_task
from repro.evaluation.runner import evaluate_method, evaluate_method_streaming
from repro.observability import metrics
from repro.observability.export import parse_prometheus, prometheus_text
from repro.streaming.base import StreamingSpec
from repro.utils.errors import StreamingError


@pytest.mark.parametrize("method_name", ["sieve", "periodic", "pks"])
def test_streamed_evaluation_equals_batch(small_context, method_name):
    batch = evaluate_method(method_name, small_context)
    streamed = evaluate_method_streaming(
        method_name, small_context, chunk_rows=193
    )
    assert pickle.dumps(streamed) == pickle.dumps(batch)


def test_streamed_evaluation_tracks_high_water_gauge(small_context):
    registry = metrics.get_registry()
    registry.reset()
    evaluate_method_streaming("sieve", small_context, chunk_rows=256)
    gauges = registry.gauges
    assert "streaming.high_water_rows" in gauges
    assert 0 < gauges["streaming.high_water_rows"] <= len(
        small_context.sieve_table
    )
    counters = registry.counters
    assert counters.get("streaming.rows", 0) >= len(small_context.sieve_table)


def test_bounded_reservoir_run_completes_with_smaller_footprint(small_context):
    registry = metrics.get_registry()
    registry.reset()
    result = evaluate_method_streaming(
        "sieve", small_context, chunk_rows=128, reservoir_rows=40
    )
    assert result.selection.num_representatives > 0
    high_water = registry.gauges["streaming.high_water_rows"]
    assert high_water < len(small_context.sieve_table)


def test_engine_task_with_streaming_spec_matches_batch_task():
    base = EvaluationTask(
        label="cactus/gru", max_invocations=900, methods=("sieve", "periodic")
    )
    streaming = EvaluationTask(
        label="cactus/gru",
        max_invocations=900,
        methods=("sieve", "periodic"),
        streaming=StreamingSpec(chunk_rows=300),
    )
    batch_results = run_task(base)
    stream_results = run_task(streaming)
    assert set(stream_results) == set(batch_results)
    for key, result in stream_results.items():
        assert pickle.dumps(result.selection) == pickle.dumps(
            batch_results[key].selection
        )
        assert result.error == batch_results[key].error
        assert result.cycle_cov == batch_results[key].cycle_cov


def test_streaming_spec_is_part_of_the_cache_key():
    base = EvaluationTask(label="cactus/gru", methods=("sieve",))
    streamed = EvaluationTask(
        label="cactus/gru", methods=("sieve",), streaming=StreamingSpec()
    )
    other_chunk = EvaluationTask(
        label="cactus/gru",
        methods=("sieve",),
        streaming=StreamingSpec(chunk_rows=100),
    )
    keys = {base.cache_key(), streamed.cache_key(), other_chunk.cache_key()}
    assert len(keys) == 3


def test_streaming_spec_validates_its_fields():
    with pytest.raises(StreamingError):
        StreamingSpec(chunk_rows=0)
    with pytest.raises(StreamingError):
        StreamingSpec(reservoir_rows=0)


def test_streaming_gauges_reach_prometheus_exposition(small_context):
    """The service's /v1/metrics renders the same registry snapshot; a
    streamed run must surface its gauge and row counter there with the
    standard name mapping (dots -> underscores, counters get _total)."""
    registry = metrics.get_registry()
    registry.reset()
    evaluate_method_streaming("sieve", small_context, chunk_rows=512)
    text = prometheus_text(registry.snapshot())
    families = parse_prometheus(text)
    assert families["streaming_high_water_rows"]["type"] == "gauge"
    assert families["streaming_rows_total"]["type"] == "counter"
    [(_, _, high_water)] = families["streaming_high_water_rows"]["samples"]
    assert high_water > 0
