"""CLI `sample --stream`: catalog streaming, feeds, stdin, error codes."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.evaluation.context import build_context
from repro.profiling.csv_io import write_profile_csv


@pytest.fixture(scope="module")
def feed_path(tmp_path_factory):
    table = build_context("cactus/gru", max_invocations=600).sieve_table
    path = tmp_path_factory.mktemp("feed") / "gru.csv"
    write_profile_csv(table, path)
    return path


def test_catalog_sample_stream_matches_batch_output(capsys):
    assert main(["--cap", "800", "sample", "cactus/gru",
                 "--method", "sieve"]) == 0
    batch_out = capsys.readouterr().out
    assert main(["--cap", "800", "sample", "cactus/gru",
                 "--method", "sieve", "--stream", "--chunk-rows", "200"]) == 0
    stream_out = capsys.readouterr().out
    [batch_line] = [l for l in batch_out.splitlines() if l.startswith("sieve")]
    [stream_line] = [l for l in stream_out.splitlines() if l.startswith("sieve")]
    assert stream_line == batch_line
    assert any("stream high-water:" in l for l in stream_out.splitlines())


def test_feed_sample_streams_a_csv_file(capsys, feed_path):
    assert main(["sample", "--stream", "--from", str(feed_path),
                 "--chunk-rows", "150"]) == 0
    out = capsys.readouterr().out
    assert "incremental stream" in out
    assert "streamed rows" in out
    assert "sieve" in out


def test_feed_sample_verbose_prints_events_and_picks(capsys, feed_path):
    assert main(["sample", "--stream", "--verbose",
                 "--from", str(feed_path), "--chunk-rows", "97"]) == 0
    out = capsys.readouterr().out
    assert "emit" in out
    assert "  pick " in out


def test_feed_sample_reads_stdin(capsys, monkeypatch, feed_path):
    monkeypatch.setattr(
        "sys.stdin", io.StringIO(feed_path.read_text())
    )
    assert main(["sample", "--stream", "--from", "-",
                 "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert "streamed rows" in out


def test_feed_without_stream_is_an_error(capsys, feed_path):
    assert main(["sample", "--from", str(feed_path)]) == 2
    assert "--from requires --stream" in capsys.readouterr().err


def test_feed_with_multiple_methods_is_an_error(capsys, feed_path):
    assert main(["sample", "--stream", "--from", str(feed_path),
                 "--method", "sieve,periodic"]) == 2
    assert "exactly one method" in capsys.readouterr().err


def test_sample_without_workload_or_feed_is_an_error(capsys):
    assert main(["sample"]) == 2
    assert "workload label" in capsys.readouterr().err
