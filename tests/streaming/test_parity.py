"""Property tests: streaming finalize == batch select, for every method.

The streaming surface's contract is that with an unbounded reservoir the
finalized :class:`~repro.core.types.SampleSelection` is *pickle-byte-
identical* to the batch ``select`` — across catalog workloads, chunk
sizes (including degenerate 1-row chunks) and chunk *orderings* (chunks
may interleave kernels arbitrarily as long as each kernel's invocations
arrive chronologically). This holds for the true incremental operators
(sieve, periodic) and for the buffering fallback (pks, random) alike.
"""

from __future__ import annotations

import pickle

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SieveConfig
from repro.evaluation.context import build_context
from repro.methods import get_method
from repro.streaming.base import StreamContext

POOL = ("cactus/gru", "cactus/lmc", "mlperf/bert")
METHODS = ("sieve", "periodic", "pks", "random")

_contexts: dict = {}


def context_for(workload: str, cap: int):
    key = (workload, cap)
    if key not in _contexts:
        _contexts[key] = build_context(workload, max_invocations=cap)
    return _contexts[key]


def stream_selection(method_name, context, config, chunks, rows=None):
    method = get_method(method_name)
    stream = method.begin_stream(
        StreamContext(
            workload=method.profile_table(context).workload,
            golden=context.golden,
            batch=context,
        ),
        config,
    )
    for i, chunk in enumerate(chunks):
        stream.observe(chunk, rows=None if rows is None else rows[i])
    return stream.finalize()


def cut_chunks(table, sizes):
    """Sequential chunks whose sizes cycle through ``sizes``."""
    chunks, start, i = [], 0, 0
    while start < len(table):
        size = sizes[i % len(sizes)]
        chunks.append(table.slice_rows(start, min(start + size, len(table))))
        start += size
        i += 1
    return chunks


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    method_name=st.sampled_from(METHODS),
    workload=st.sampled_from(POOL),
    cap=st.sampled_from((600, 1100)),
    sizes=st.lists(st.integers(1, 700), min_size=1, max_size=4),
    theta=st.sampled_from((0.3, 0.4)),
)
def test_streaming_equals_batch_across_chunk_sizes(
    method_name, workload, cap, sizes, theta
):
    context = context_for(workload, cap)
    method = get_method(method_name)
    config = SieveConfig(theta=theta) if method_name == "sieve" else None
    table = method.profile_table(context)
    batch = method.select(context, method.resolve_config(config))
    streamed = stream_selection(
        method_name, context, config, cut_chunks(table, sizes)
    )
    assert pickle.dumps(streamed) == pickle.dumps(batch)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    method_name=st.sampled_from(("sieve", "periodic")),
    workload=st.sampled_from(POOL),
    seed=st.integers(0, 2**16),
)
def test_streaming_is_chunk_order_invariant(method_name, workload, seed):
    """Chunks carrying explicit global rows may arrive in any order that
    preserves each kernel's internal chronology; the incremental
    operators must still finalize to the batch selection."""
    context = context_for(workload, 900)
    method = get_method(method_name)
    config = method.resolve_config(None)
    table = method.profile_table(context)
    batch = method.select(context, config)

    # Partition rows by kernel-id bucket, then feed buckets in a seeded
    # order. Rows inside a bucket stay ascending, so every kernel's
    # invocations arrive chronologically.
    rng = np.random.default_rng(seed)
    buckets = [
        np.flatnonzero(np.asarray(table.kernel_id) % 3 == r) for r in range(3)
    ]
    order = rng.permutation(3)
    chunks, rows = [], []
    for b in order:
        picked = buckets[b]
        if len(picked) == 0:
            continue
        chunks.append(
            type(table)(
                workload=table.workload,
                kernel_names=table.kernel_names,
                kernel_id=np.asarray(table.kernel_id)[picked],
                invocation_id=np.asarray(table.invocation_id)[picked],
                insn_count=np.asarray(table.insn_count)[picked],
                cta_size=np.asarray(table.cta_size)[picked],
                num_ctas=np.asarray(table.num_ctas)[picked],
            )
        )
        rows.append(picked.astype(np.int64))
    streamed = stream_selection(method_name, context, config, chunks, rows)
    assert pickle.dumps(streamed) == pickle.dumps(batch)


def test_buffering_fallback_reports_honest_footprint():
    """Methods without a true stream buffer everything — and say so."""
    context = context_for("cactus/gru", 600)
    method = get_method("random")
    assert not method.streams_incrementally
    stream = method.begin_stream(
        StreamContext(workload=context.sieve_table.workload, batch=context)
    )
    for chunk in cut_chunks(context.sieve_table, (200,)):
        stream.observe(chunk)
    assert stream.resident_rows == len(context.sieve_table)


def test_true_streams_advertise_incrementality():
    for name in ("sieve", "periodic"):
        assert get_method(name).streams_incrementally
