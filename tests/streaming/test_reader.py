"""ProfileTableReader: chunked CSV/JSONL feeds, sniffing, truncation."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.evaluation.context import build_context
from repro.profiling.csv_io import (
    ProfileTableReader,
    read_profile_csv,
    write_profile_csv,
)
from repro.profiling.table import concat_profile_tables
from repro.utils.errors import ProfileError


@pytest.fixture(scope="module")
def table():
    return build_context("cactus/gru", max_invocations=900).sieve_table


def jsonl_lines(table, header=True):
    lines = []
    if header:
        lines.append(json.dumps({"workload": table.workload, "rows": len(table)}))
    for i in range(len(table)):
        lines.append(json.dumps({
            "kernel_name": table.kernel_name_of_row(i),
            "invocation_id": int(table.invocation_id[i]),
            "insn_count": int(table.insn_count[i]),
            "cta_size": int(table.cta_size[i]),
            "num_ctas": int(table.num_ctas[i]),
        }))
    return "\n".join(lines) + "\n"


def assert_tables_equal(got, want):
    assert got.workload == want.workload
    assert len(got) == len(want)
    got_names = [got.kernel_name_of_row(i) for i in range(len(got))]
    want_names = [want.kernel_name_of_row(i) for i in range(len(want))]
    assert got_names == want_names
    for column in ("invocation_id", "insn_count", "cta_size", "num_ctas"):
        np.testing.assert_array_equal(
            getattr(got, column), getattr(want, column)
        )


@pytest.mark.parametrize("chunk_rows", [1, 64, 500, 5000])
def test_csv_feed_round_trips_through_chunks(table, tmp_path, chunk_rows):
    path = tmp_path / "feed.csv"
    write_profile_csv(table, path)
    reader = ProfileTableReader(path, chunk_rows=chunk_rows)
    chunks = list(reader)
    assert all(len(c) <= chunk_rows for c in chunks)
    assert reader.rows_read == len(table)
    assert reader.workload == table.workload
    assert_tables_equal(concat_profile_tables(chunks), read_profile_csv(path))


def test_kernel_ids_are_prefix_stable_across_chunks(table, tmp_path):
    path = tmp_path / "feed.csv"
    write_profile_csv(table, path)
    chunks = list(ProfileTableReader(path, chunk_rows=100))
    for earlier, later in zip(chunks, chunks[1:]):
        assert later.kernel_names[: len(earlier.kernel_names)] == \
            earlier.kernel_names
    # Therefore a name's id never changes once assigned.
    seen: dict[str, int] = {}
    for chunk in chunks:
        for i in range(len(chunk)):
            name = chunk.kernel_name_of_row(i)
            kid = int(chunk.kernel_id[i])
            assert seen.setdefault(name, kid) == kid


def test_jsonl_feed_with_header(table):
    reader = ProfileTableReader(
        io.StringIO(jsonl_lines(table)), chunk_rows=128, fmt="jsonl"
    )
    merged = concat_profile_tables(list(reader))
    assert_tables_equal(merged, table)
    assert reader.declared_rows == len(table)


def test_jsonl_feed_without_header_uses_default_workload(table):
    reader = ProfileTableReader(
        io.StringIO(jsonl_lines(table, header=False)), fmt="jsonl"
    )
    merged = concat_profile_tables(list(reader))
    assert merged.workload == "stream"
    assert len(merged) == len(table)


def test_format_sniffing_on_seekable_streams(table):
    jsonl = ProfileTableReader(io.StringIO(jsonl_lines(table)))
    assert jsonl._fmt == "jsonl"
    csv_text = io.StringIO(
        "# workload,wl,rows,1\n"
        "kernel_name,invocation_id,insn_count,cta_size,num_ctas\n"
        "k,0,10,128,4\n"
    )
    assert ProfileTableReader(csv_text)._fmt == "csv"


class _Pipe(io.TextIOBase):
    """A non-seekable line stream (stdin stand-in)."""

    def __init__(self, text: str):
        self._inner = io.StringIO(text)

    def seekable(self) -> bool:
        return False

    def readline(self, size: int = -1) -> str:
        return self._inner.readline(size)

    def read(self, size: int = -1) -> str:
        return self._inner.read(size)


def test_format_sniffing_on_non_seekable_streams(table):
    reader = ProfileTableReader(_Pipe(jsonl_lines(table)), chunk_rows=200)
    assert reader._fmt == "jsonl"
    merged = concat_profile_tables(list(reader))
    assert_tables_equal(merged, table)


def test_non_seekable_csv_keeps_its_first_line(table):
    text = (
        "# workload,wl,rows,2\n"
        "kernel_name,invocation_id,insn_count,cta_size,num_ctas\n"
        "a,0,10,128,4\n"
        "a,1,20,128,4\n"
    )
    reader = ProfileTableReader(_Pipe(text))
    assert reader._fmt == "csv"
    [chunk] = list(reader)
    assert len(chunk) == 2 and reader.workload == "wl"


def test_truncated_feed_raises(table, tmp_path):
    path = tmp_path / "feed.csv"
    write_profile_csv(table, path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-5]) + "\n")
    reader = ProfileTableReader(path, chunk_rows=100)
    with pytest.raises(ProfileError, match="row count mismatch"):
        list(reader)


def test_malformed_csv_row_carries_line_number(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text(
        "# workload,wl,rows,2\n"
        "kernel_name,invocation_id,insn_count,cta_size,num_ctas\n"
        "a,0,10,128,4\n"
        "a,not-an-int,20,128,4\n"
    )
    with pytest.raises(ProfileError) as excinfo:
        list(ProfileTableReader(path))
    assert excinfo.value.context.get("row") == 4


def test_malformed_jsonl_row_carries_line_number():
    text = '{"workload": "wl"}\n{"kernel_name": "a", "invocation_id": 0}\n'
    with pytest.raises(ProfileError) as excinfo:
        list(ProfileTableReader(io.StringIO(text), fmt="jsonl"))
    assert excinfo.value.context.get("row") == 2


def test_empty_csv_feed_raises(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ProfileError, match="empty"):
        list(ProfileTableReader(path))


def test_reader_rejects_bad_configuration():
    with pytest.raises(ProfileError):
        ProfileTableReader(io.StringIO(""), chunk_rows=0)
    with pytest.raises(ProfileError):
        ProfileTableReader(io.StringIO(""), fmt="parquet")


def test_csv_feed_drives_sieve_stream_to_batch_parity(table, tmp_path):
    """End to end: file feed -> chunks -> SieveStream == batch pipeline.

    The batch counterpart of a feed is ``read_profile_csv`` of the same
    file: both number kernels by first appearance (the original table may
    number them differently), so that is the table parity is pinned on.
    """
    import pickle

    from repro.core.config import SieveConfig
    from repro.core.pipeline import SievePipeline
    from repro.methods import get_method
    from repro.streaming.base import StreamContext

    path = tmp_path / "feed.csv"
    write_profile_csv(table, path)
    stream = get_method("sieve").begin_stream(
        StreamContext(workload=table.workload), SieveConfig()
    )
    for chunk in ProfileTableReader(path, chunk_rows=177):
        stream.observe(chunk)
    streamed = stream.finalize()
    batch = SievePipeline(SieveConfig()).select(read_profile_csv(path))
    assert pickle.dumps(streamed) == pickle.dumps(batch)
