"""Emit/retract event-ledger semantics for the incremental operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.periodic import PeriodicSampler
from repro.core.config import SieveConfig
from repro.evaluation.context import build_context
from repro.methods import get_method
from repro.streaming.base import StreamContext, iter_table_chunks


@pytest.fixture(scope="module")
def table():
    return build_context("cactus/lmc", max_invocations=2000).sieve_table


def replay(events) -> dict[str, tuple[int, int]]:
    """Apply the ledger in sequence order: group -> live (row, inv)."""
    live: dict[str, tuple[int, int]] = {}
    for event in events:
        if event.kind == "emit":
            live[event.group] = (event.row, event.invocation_id)
        else:
            assert event.kind == "retract"
            assert event.group in live, "retract of a group never emitted"
            del live[event.group]
    return live


def test_sieve_ledger_replays_to_the_final_selection(table):
    stream = get_method("sieve").begin_stream(
        StreamContext(workload=table.workload, collect_events=True),
        SieveConfig(),
    )
    events = []
    for chunk in iter_table_chunks(table, 257):
        events.extend(stream.observe(chunk))
    selection = stream.finalize()
    events = list(stream.events)  # includes finalize's reconciliation
    assert [e.seq for e in events] == list(range(len(events)))
    live = replay(events)
    want = {
        rep.group: (rep.row, rep.invocation_id)
        for rep in selection.representatives
    }
    assert live == want


def test_sieve_emits_eagerly_and_retracts_on_changes(table):
    stream = get_method("sieve").begin_stream(
        StreamContext(workload=table.workload, collect_events=True),
        SieveConfig(),
    )
    first_chunk_events = stream.observe(table.slice_rows(0, 400))
    assert first_chunk_events, "first chunk must surface provisional picks"
    assert all(e.kind == "emit" for e in first_chunk_events[:1])
    for chunk in iter_table_chunks(table.slice_rows(400, len(table)), 400):
        stream.observe(chunk, rows=None)
    stream.finalize()
    kinds = {e.kind for e in stream.events}
    assert kinds <= {"emit", "retract"}
    # Provisional picks moved as more of the stream arrived.
    assert any(e.kind == "retract" for e in stream.events)


def test_sieve_events_off_by_default(table):
    stream = get_method("sieve").begin_stream(
        StreamContext(workload=table.workload), SieveConfig()
    )
    for chunk in iter_table_chunks(table, 500):
        assert stream.observe(chunk) == []
    stream.finalize()
    assert stream.events == []


def test_periodic_provisional_fallback_is_retracted(table):
    """With an offset, row 0 is emitted provisionally (the batch fallback
    pick) and retracted the moment a real grid pick lands."""
    config = PeriodicSampler(period=50, offset=10)
    stream = get_method("periodic").begin_stream(
        StreamContext(workload=table.workload, collect_events=True), config
    )
    for chunk in iter_table_chunks(table, 7):
        stream.observe(chunk)
    selection = stream.finalize()
    events = stream.events
    assert events[0].kind == "emit" and events[0].group == "period0"
    assert events[0].row == 0
    retracts = [e for e in events if e.kind == "retract"]
    assert retracts and retracts[0].group == "period0"
    live = replay(events)
    want = {
        rep.group: (rep.row, rep.invocation_id)
        for rep in selection.representatives
    }
    assert live == want


def test_periodic_without_grid_hits_keeps_the_fallback():
    table = build_context("cactus/gru", max_invocations=30).sieve_table
    config = PeriodicSampler(period=10_000, offset=100)
    stream = get_method("periodic").begin_stream(
        StreamContext(workload=table.workload, collect_events=True), config
    )
    stream.observe(table)
    selection = stream.finalize()
    assert len(selection.representatives) == 1
    assert selection.representatives[0].row == 0
    live = replay(stream.events)
    assert live == {"period0": (0, int(table.invocation_id[0]))}


def test_event_weights_are_estimates_rows_seen_monotone(table):
    stream = get_method("sieve").begin_stream(
        StreamContext(workload=table.workload, collect_events=True),
        SieveConfig(),
    )
    for chunk in iter_table_chunks(table, 300):
        stream.observe(chunk)
    stream.finalize()
    positions = [e.rows_seen for e in stream.events]
    assert positions == sorted(positions)
    emitted = [e for e in stream.events if e.kind == "emit"]
    assert all(0.0 <= e.weight <= 1.0 for e in emitted)
    assert all(np.isfinite(e.weight) for e in emitted)
