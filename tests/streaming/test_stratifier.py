"""StreamingStratifier parity: incremental strata == batch strata."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SieveConfig
from repro.core.stratify import stratify_table
from repro.streaming.base import iter_table_chunks
from repro.streaming.stratify import StreamingStratifier
from repro.utils.errors import StreamingError
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def table():
    from repro.evaluation.context import build_context

    return build_context("cactus/lmc", max_invocations=2500).sieve_table


def assert_strata_identical(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert (a.kernel_id, a.kernel_name, a.tier, a.index) == (
            b.kernel_id, b.kernel_name, b.tier, b.index,
        )
        np.testing.assert_array_equal(a.rows, b.rows)
        assert a.insn_total == b.insn_total
        assert a.insn_cov == b.insn_cov  # bit-identical, not just close


def test_single_observe_equals_batch(table):
    config = SieveConfig()
    stratifier = StreamingStratifier(table.workload, config)
    stratifier.observe(table)
    assert_strata_identical(
        stratifier.finalize().strata, stratify_table(table, config)
    )


@pytest.mark.parametrize("chunk_rows", [1, 17, 256, 1024, 10_000])
def test_chunked_observe_equals_batch(table, chunk_rows):
    config = SieveConfig()
    stratifier = StreamingStratifier(table.workload, config)
    for chunk in iter_table_chunks(table, chunk_rows):
        stratifier.observe(chunk)
    assert_strata_identical(
        stratifier.finalize().strata, stratify_table(table, config)
    )


def test_interleaved_kernel_chunks_equal_batch(table):
    """Chunks cut across kernels (explicit global rows, within-kernel
    order preserved) still finalize to the batch strata."""
    config = SieveConfig()
    even = np.flatnonzero(np.asarray(table.kernel_id) % 2 == 0)
    odd = np.flatnonzero(np.asarray(table.kernel_id) % 2 == 1)
    stratifier = StreamingStratifier(table.workload, config)
    # Feed odd-kernel rows first: arrival order across kernels differs
    # from the table, but each kernel still sees its rows chronologically.
    for rows in (odd, even):
        chunk = table.slice_rows(0, len(table))
        sub = type(table)(
            workload=table.workload,
            kernel_names=table.kernel_names,
            kernel_id=chunk.kernel_id[rows],
            invocation_id=chunk.invocation_id[rows],
            insn_count=chunk.insn_count[rows],
            cta_size=chunk.cta_size[rows],
            num_ctas=chunk.num_ctas[rows],
        )
        stratifier.observe(sub, rows=rows.astype(np.int64))
    assert_strata_identical(
        stratifier.finalize().strata, stratify_table(table, config)
    )


def test_empty_chunk_is_a_no_op(table):
    config = SieveConfig()
    stratifier = StreamingStratifier(table.workload, config)
    assert stratifier.observe(table.slice_rows(0, 0)) == []
    stratifier.observe(table)
    assert_strata_identical(
        stratifier.finalize().strata, stratify_table(table, config)
    )


def test_bounded_reservoir_keeps_complete_kernels_exact():
    """With a bound that only some kernels exceed, the complete kernels'
    strata stay byte-identical to batch and the evicted ones keep exact
    tier assignment, population and instruction totals."""
    from repro.evaluation.context import build_context

    spec = make_spec(name="bounded", num_kernels=6, num_invocations=1800)
    table = build_context(spec.label, spec=spec).sieve_table
    config = SieveConfig()
    capacity = 150  # some kernels hold more rows than this
    stratifier = StreamingStratifier(table.workload, config, reservoir_rows=capacity)
    for chunk in iter_table_chunks(table, 200):
        stratifier.observe(chunk)
    finalized = stratifier.finalize()
    batch = stratify_table(table, config)
    assert stratifier.resident_rows <= capacity * table.num_kernels

    batch_by_kernel: dict[int, list] = {}
    for stratum in batch:
        batch_by_kernel.setdefault(stratum.kernel_id, []).append(stratum)
    got_by_kernel: dict[int, list] = {}
    for stratum, member in zip(finalized.strata, finalized.members):
        got_by_kernel.setdefault(stratum.kernel_id, []).append((stratum, member))

    assert set(got_by_kernel) == set(batch_by_kernel)
    for kernel_id, pairs in got_by_kernel.items():
        want = batch_by_kernel[kernel_id]
        population = sum(len(s.rows) for s in want)
        kernel_total = sum(s.insn_total for s in want)
        if all(member.complete for _, member in pairs):
            assert_strata_identical([s for s, _ in pairs], want)
        else:
            # Evicted: same tier family, exact population bookkeeping.
            assert {s.tier for s, _ in pairs} == {s.tier for s in want}
            for _, member in pairs:
                assert member.population == population
            assert sum(s.insn_total for s, _ in pairs) <= kernel_total


def test_exact_picks_survive_eviction():
    from repro.evaluation.context import build_context

    spec = make_spec(name="picks", num_kernels=4, num_invocations=1600,
                     tier_fractions=(0.5, 0.5, 0.0))
    table = build_context(spec.label, spec=spec).sieve_table
    stratifier = StreamingStratifier(table.workload, SieveConfig(), reservoir_rows=64)
    for chunk in iter_table_chunks(table, 123):
        stratifier.observe(chunk)
    for kernel_id in range(table.num_kernels):
        rows = table.rows_for_kernel(kernel_id)
        slot = stratifier.slot_of(table.kernel_names[kernel_id])
        assert slot is not None
        first = stratifier.exact_pick(slot, "first")
        assert first == (int(rows[0]), int(table.invocation_id[rows[0]]))
        cta = np.asarray(table.cta_size)[rows]
        sizes, counts = np.unique(cta, return_counts=True)
        dominant = int(sizes[np.argmax(counts)])
        pick = stratifier.exact_pick(slot, "dominant_cta")
        assert pick is not None
        picked_row = pick[0]
        assert int(np.asarray(table.cta_size)[picked_row]) == dominant
        assert picked_row == int(rows[cta == dominant][0])


def test_finalizing_nothing_yields_no_strata():
    stratifier = StreamingStratifier("empty", SieveConfig())
    finalized = stratifier.finalize()
    assert finalized.strata == []


def test_theta_must_be_positive():
    with pytest.raises(Exception):
        StreamingStratifier("wl", SieveConfig(theta=0.0))


def test_misaligned_explicit_rows_rejected_by_streams(table):
    """MethodStream.observe validates explicit rows align with the chunk."""
    from repro.methods import get_method
    from repro.streaming.base import StreamContext

    stream = get_method("sieve").begin_stream(
        StreamContext(workload=table.workload)
    )
    chunk = table.slice_rows(0, 10)
    with pytest.raises(StreamingError):
        stream.observe(chunk, rows=np.arange(5, dtype=np.int64))
