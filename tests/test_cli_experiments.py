"""CLI experiment handlers exercised end to end at tiny caps."""

import pytest

from repro.cli import main

CAP = "800"


@pytest.mark.parametrize("command,needle", [
    ("fig2", "tier1@0.1"),
    ("fig3", "sieve_err"),
    ("fig7", "speedup"),
    ("fig10", "hmean_speedup"),
])
def test_figure_commands_print_tables(capsys, command, needle):
    assert main(["--cap", CAP, command]) == 0
    out = capsys.readouterr().out
    assert needle in out
    assert "cactus/" in out or "theta" in out


def test_table1_with_cap(capsys):
    assert main(["--cap", CAP, "table1"]) == 0
    out = capsys.readouterr().out
    assert out.count("\n") >= 41  # header + 40 workloads


def test_fig5_policies_table(capsys):
    # Restrict cost: fig5 runs three PKS variants per workload, so the cap
    # matters; the output must show all three policy columns.
    assert main(["--cap", "600", "fig5"]) == 0
    out = capsys.readouterr().out
    for column in ("pks_first", "pks_random", "pks_centroid", "sieve"):
        assert column in out


def test_fig9_relative_table(capsys):
    assert main(["--cap", CAP, "fig9"]) == 0
    out = capsys.readouterr().out
    assert "hardware" in out
    assert "cactus/lmr" in out
