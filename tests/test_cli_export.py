"""CLI telemetry exports: ``trace export``, ``attribute`` and the
backward-compatible ``trace <workload>`` spelling."""

import json

import pytest

from repro.cli import _shim_trace_argv, main
from repro.observability import metrics, spans
from repro.observability.export import read_jsonl_spans
from repro.observability.manifest import RunManifest


@pytest.fixture(autouse=True)
def _clean_telemetry():
    spans.reset()
    spans.clear_sinks()
    metrics.get_registry().reset()
    yield
    spans.reset()
    spans.clear_sinks()
    metrics.get_registry().reset()


# --------------------------------------------------------------------- #
# argv shim: the pre-export CLI spelled selection traces "trace <workload>"


def test_shim_rewrites_bare_trace_invocation():
    assert _shim_trace_argv(["trace", "cactus/gru", "--out", "traces"]) == [
        "trace", "selection", "cactus/gru", "--out", "traces",
    ]
    # Global value flags before the subcommand are skipped, not mistaken
    # for the trace operand.
    assert _shim_trace_argv(["--cap", "800", "trace", "cactus/gru"]) == [
        "--cap", "800", "trace", "selection", "cactus/gru",
    ]


@pytest.mark.parametrize("argv", [
    ["trace", "selection", "w"],
    ["trace", "export", "w"],
    ["trace", "--help"],
    ["trace"],
    ["compare", "trace"],  # 'trace' as an operand of another command
])
def test_shim_leaves_explicit_spellings_alone(argv):
    assert _shim_trace_argv(argv) == argv


# --------------------------------------------------------------------- #
# trace export


def test_trace_export_chrome(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main([
        "--cap", "500", "trace", "export", "cactus/gru",
        "--format", "chrome", "--out", str(out),
    ]) == 0
    capsys.readouterr()
    trace = json.loads(out.read_text())
    events = trace["traceEvents"]
    assert any(e.get("ph") == "X" and e["name"] == "sieve.stratify" for e in events)
    assert any(e.get("ph") == "M" for e in events)


def test_trace_export_jsonl_is_canonical(tmp_path, capsys):
    out = tmp_path / "spans.jsonl"
    assert main([
        "--cap", "500", "trace", "export", "cactus/gru",
        "--format", "jsonl", "--out", str(out), "--structural",
    ]) == 0
    capsys.readouterr()
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert lines
    paths = [(line["path"], line["seq"]) for line in lines]
    assert paths == sorted(paths)
    assert all("wall_s" not in line for line in lines)


def test_trace_export_prometheus(tmp_path, capsys):
    out = tmp_path / "metrics.prom"
    assert main([
        "--cap", "500", "trace", "export", "cactus/gru",
        "--format", "prometheus", "--out", str(out),
    ]) == 0
    capsys.readouterr()
    text = out.read_text()
    assert "# TYPE" in text


def test_trace_export_from_manifest(tmp_path, capsys):
    manifest_path = tmp_path / "m.json"
    assert main([
        "--cap", "500", "--trace-out", str(manifest_path),
        "sample", "cactus/gru",
    ]) == 0
    capsys.readouterr()
    manifest = RunManifest.load(manifest_path)
    assert manifest.spans  # --trace-out now embeds the span window

    out = tmp_path / "trace.json"
    assert main([
        "trace", "export", "--from-manifest", str(manifest_path),
        "--format", "chrome", "--out", str(out),
    ]) == 0
    capsys.readouterr()
    trace = json.loads(out.read_text())
    durations = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    assert len(durations) == len(manifest.spans)


def test_trace_export_from_spanless_manifest_fails_cleanly(tmp_path, capsys):
    path = tmp_path / "empty.json"
    RunManifest(command="x").save(path)
    assert main([
        "trace", "export", "--from-manifest", str(path), "--format", "chrome",
        "--out", str(tmp_path / "out.json"),
    ]) == 2
    capsys.readouterr()


# --------------------------------------------------------------------- #
# attribute


def test_attribute_renders_tables_and_json(tmp_path, capsys):
    out = tmp_path / "attr.json"
    assert main([
        "--cap", "500", "attribute", "cactus/gru", "--json", str(out),
    ]) == 0
    text = capsys.readouterr().out
    assert "attribution cactus/gru · sieve" in text
    assert "signed error" in text
    payload = json.loads(out.read_text())
    assert {entry["method"] for entry in payload} >= {"sieve"}
    for entry in payload:
        total = sum(k["contribution"] for k in entry["per_kernel"])
        assert abs(total - entry["signed_error"]) <= 1e-9 * abs(entry["signed_error"]) + 1e-12


def test_attribute_from_manifest(tmp_path, capsys):
    manifest_path = tmp_path / "m.json"
    assert main([
        "--cap", "500", "--trace-out", str(manifest_path),
        "sample", "cactus/gru",
    ]) == 0
    capsys.readouterr()
    assert RunManifest.load(manifest_path).attribution

    assert main(["attribute", "--from-manifest", str(manifest_path)]) == 0
    text = capsys.readouterr().out
    assert "attribution cactus/gru" in text


# --------------------------------------------------------------------- #
# --stream-spans


def test_stream_spans_writes_live_jsonl(tmp_path, capsys):
    stream = tmp_path / "live.jsonl"
    assert main([
        "--cap", "500", "--stream-spans", str(stream), "sample", "cactus/gru",
    ]) == 0
    capsys.readouterr()
    records = read_jsonl_spans(stream)
    assert records
    assert {r.name for r in records} >= {"sieve.stratify", "sieve.selection"}
    # The sink was unregistered on exit; later spans don't leak into it.
    size = stream.stat().st_size
    with spans.span("after.exit"):
        pass
    assert stream.stat().st_size == size
