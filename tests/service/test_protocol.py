"""The request/response contract, exercised without a socket."""

from __future__ import annotations

import pickle

import pytest

from repro.baselines.pks import PksConfig
from repro.core.config import SieveConfig
from repro.core.pipeline import SievePipeline
from repro.evaluation.context import build_context
from repro.evaluation.engine import TaskOutcome
from repro.methods import get_method
from repro.profiling.csv_io import read_profile_csv, write_profile_csv
from repro.service import protocol
from repro.utils.errors import (
    BadRequestError,
    FaultInjectionError,
    UnknownMethodError,
)

VALID = {"workload": "rodinia/nw", "method": "periodic", "cap": 200}


def test_parse_request_catalog_happy_path():
    request = protocol.parse_request("predict", dict(VALID))
    assert request.kind == "predict"
    assert request.method == "periodic"
    assert request.workload == "rodinia/nw"
    assert request.cap == 200
    assert not request.inline
    assert request.method_request().key == "periodic"


def test_parse_request_defaults_to_sieve():
    request = protocol.parse_request("select", {"workload": "rodinia/nw"})
    assert request.method == "sieve"
    assert request.cap is None and request.config is None


@pytest.mark.parametrize(
    "payload, match",
    [
        ({}, "exactly one of"),
        ({"workload": "rodinia/nw", "profile_rows": []}, "exactly one of"),
        ({"workload": "rodinia/nw", "chaos": 1}, "unknown request field"),
        ({"workload": "nope/nope"}, "unknown workload"),
        ({"workload": "rodinia/nw", "cap": 0}, "positive integer"),
        ({"workload": "rodinia/nw", "cap": "many"}, "positive integer"),
        ({"workload": 7}, "string label"),
        ({"workload": "rodinia/nw", "method": ""}, "non-empty"),
        ({"workload": "rodinia/nw", "faults": 3}, "MODE:RATE"),
    ],
)
def test_parse_request_rejects_malformed(payload, match):
    with pytest.raises(BadRequestError, match=match):
        protocol.parse_request("select", payload)


def test_parse_request_rejects_unknown_kind_and_body():
    with pytest.raises(BadRequestError, match="unknown request kind"):
        protocol.parse_request("mutate", dict(VALID))
    with pytest.raises(BadRequestError, match="JSON object"):
        protocol.parse_request("select", [1, 2])


def test_parse_request_unknown_method_is_typed_and_400():
    with pytest.raises(UnknownMethodError) as info:
        protocol.parse_request("select", {"workload": "rodinia/nw", "method": "zzz"})
    assert protocol.status_for(info.value) == 400


def test_parse_request_bad_fault_plan_is_typed_and_400():
    with pytest.raises(FaultInjectionError) as info:
        protocol.parse_request(
            "select", {"workload": "rodinia/nw", "faults": "gremlins:1.0"}
        )
    assert protocol.status_for(info.value) == 400


def test_config_from_dict_builds_typed_configs():
    config = protocol.config_from_dict("sieve", {"theta": 0.7})
    assert isinstance(config, SieveConfig) and config.theta == 0.7
    assert protocol.config_from_dict("sieve", None) is None
    assert protocol.config_from_dict("sieve", {}) is None


def test_config_from_dict_recurses_into_nested_dataclasses():
    config = protocol.config_from_dict(
        "pks-two-level", {"pks": {"max_k": 5}}
    )
    assert isinstance(config.pks, PksConfig) and config.pks.max_k == 5


def test_config_from_dict_rejects_unknown_fields():
    with pytest.raises(BadRequestError, match="unknown config.*nope"):
        protocol.config_from_dict("sieve", {"nope": 1})
    with pytest.raises(BadRequestError, match="JSON object"):
        protocol.config_from_dict("sieve", 42)


def test_inline_rows_select_matches_direct_pipeline():
    rows = [
        {"kernel_name": f"k{i % 3}", "insn_count": 1000 + 37 * i}
        for i in range(60)
    ]
    request = protocol.parse_request(
        "select", {"method": "sieve", "profile_rows": rows}
    )
    assert request.inline
    served = protocol.select_inline(request)
    direct = SievePipeline(SieveConfig()).select(
        protocol.table_from_rows(rows, workload="inline")
    )
    assert pickle.dumps(served) == pickle.dumps(direct)


def test_inline_csv_select_matches_direct_pipeline(tmp_path):
    table = build_context("rodinia/nw", 150).sieve_table
    path = tmp_path / "profile.csv"
    write_profile_csv(table, path)
    text = path.read_text()
    request = protocol.parse_request(
        "select", {"method": "periodic", "profile_csv": text}
    )
    served = protocol.select_inline(request)
    direct = get_method("periodic").config_schema().select(read_profile_csv(path))
    assert pickle.dumps(served) == pickle.dumps(direct)


@pytest.mark.parametrize(
    "payload, match",
    [
        (
            {"method": "pks", "profile_rows": [{"kernel_name": "k", "insn_count": 1}]},
            "inline profiles support",
        ),
        (
            {"method": "sieve", "profile_rows": [{"kernel_name": "k"}]},
            "insn_count",
        ),
        ({"method": "sieve", "profile_rows": []}, "non-empty"),
        ({"method": "sieve", "profile_csv": "   "}, "non-empty"),
        (
            {
                "method": "sieve",
                "cap": 5,
                "profile_rows": [{"kernel_name": "k", "insn_count": 1}],
            },
            "cap applies to catalog",
        ),
        (
            {
                "method": "sieve",
                "faults": "crash:1.0",
                "profile_rows": [{"kernel_name": "k", "insn_count": 1}],
            },
            "faults apply to catalog",
        ),
    ],
)
def test_inline_requests_reject_unsupported_shapes(payload, match):
    with pytest.raises(BadRequestError, match=match):
        protocol.parse_request("select", payload)


def test_inline_predict_is_rejected():
    with pytest.raises(BadRequestError, match="golden reference"):
        protocol.parse_request(
            "predict",
            {"method": "sieve", "profile_rows": [{"kernel_name": "k", "insn_count": 1}]},
        )


def test_serialization_is_deterministic():
    context = build_context("rodinia/nw", 150)
    from repro.evaluation.runner import evaluate_method

    result = evaluate_method("periodic", context, None)
    first = protocol.result_to_dict(result)
    assert first == protocol.result_to_dict(result)
    assert protocol.canonical_json(first) == protocol.canonical_json(
        protocol.result_to_dict(result)
    )
    assert protocol.pickle_digest(result) == protocol.pickle_digest(result)
    selection = protocol.selection_to_dict(result.selection)
    assert selection["num_representatives"] == len(selection["representatives"])
    assert selection["workload"] == "rodinia/nw"


def test_error_payload_carries_structured_context():
    error = BadRequestError("bad knob", workload="rodinia/nw", cap=200)
    payload = protocol.error_payload(error)
    assert payload["type"] == "BadRequestError"
    assert payload["message"] == "bad knob"
    assert payload["context"] == {"cap": 200, "workload": "rodinia/nw"}
    assert protocol.status_for(RuntimeError("boom")) == 500


@pytest.mark.parametrize(
    "status, expected_type, expected_http",
    [
        ("crash", "TaskCrashError", 500),
        ("timeout", "TaskTimeoutError", 500),
        ("error", "EngineError", 500),
        ("quarantined", "QuarantinedTaskError", 503),
    ],
)
def test_outcome_error_mapping(status, expected_type, expected_http):
    outcome = TaskOutcome(
        label="rodinia/nw", status=status, attempts=2, error="boom"
    )
    payload = protocol.outcome_error_payload(outcome)
    assert payload["type"] == expected_type
    assert payload["context"]["attempts"] == 2
    assert protocol.outcome_status(outcome) == expected_http
