"""Shared service-test plumbing: one live server + a tiny HTTP client."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.service.server import ServiceConfig, start_in_thread


class Client:
    """Keep-alive JSON client against the module-scoped test server."""

    def __init__(self, host: str, port: int, timeout_s: float = 120.0):
        self.host = host
        self.port = port
        self.connection = http.client.HTTPConnection(host, port, timeout=timeout_s)

    def get(self, route: str) -> tuple[int, object, str]:
        self.connection.request("GET", route)
        return self._read()

    def post(self, route: str, payload: object) -> tuple[int, object, str]:
        body = json.dumps(payload).encode("utf-8")
        self.connection.request(
            "POST", route, body=body,
            headers={"Content-Length": str(len(body))},
        )
        return self._read()

    def _read(self) -> tuple[int, object, str]:
        response = self.connection.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            return response.status, json.loads(raw), content_type
        return response.status, raw.decode("utf-8"), content_type

    def close(self) -> None:
        self.connection.close()


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    cache = tmp_path_factory.mktemp("service-cache")
    handle = start_in_thread(
        ServiceConfig(cache_dir=str(cache), window_s=0.002, deadline_s=120.0)
    )
    yield handle
    handle.stop()


@pytest.fixture
def client(service):
    client = Client(service.host, service.port)
    yield client
    client.close()
