"""Loadgen determinism, trace round-trips and the live harness."""

from __future__ import annotations

import pytest

from repro.service import loadgen, protocol
from repro.utils.errors import BadRequestError, ServiceError

MIX = loadgen.RequestMix(
    workloads=("rodinia/nw", "rodinia/lud"),
    methods=("periodic", "random"),
    cap=200,
    predict_fraction=0.5,
)


@pytest.mark.parametrize(
    "pattern", ["static:50", "poisson:80", "dynamic:10@0.25,200@0.75"]
)
def test_same_seed_same_schedule(pattern):
    first = loadgen.generate_requests(
        loadgen.parse_pattern(pattern), MIX, 24, seed=7
    )
    second = loadgen.generate_requests(
        loadgen.parse_pattern(pattern), MIX, 24, seed=7
    )
    assert first == second
    different = loadgen.generate_requests(
        loadgen.parse_pattern(pattern), MIX, 24, seed=8
    )
    assert first != different


def test_schedule_shape():
    requests = loadgen.generate_requests(
        loadgen.parse_pattern("static:100"), MIX, 20, seed=0
    )
    assert len(requests) == 20
    assert [request.index for request in requests] == list(range(20))
    offsets = [request.offset_s for request in requests]
    assert offsets == sorted(offsets)
    routes = {request.route for request in requests}
    assert routes <= {protocol.SELECT_ROUTE, protocol.PREDICT_ROUTE}
    for request in requests:
        assert request.payload["workload"] in MIX.workloads
        assert request.payload["method"] in MIX.methods
        assert request.payload["cap"] == 200


def test_dynamic_pattern_phases_cover_all_requests():
    pattern = loadgen.parse_pattern("dynamic:10@0.5,100@0.5")
    offsets = pattern.offsets(10, None)
    assert len(offsets) == 10
    # First phase spaces at 1/10 s, second at 1/100 s.
    assert offsets[1] - offsets[0] == pytest.approx(0.1)
    assert offsets[9] - offsets[8] == pytest.approx(0.01)


@pytest.mark.parametrize(
    "text",
    ["static:0", "poisson:-3", "bursty:5", "dynamic:10@0.5", "static:abc"],
)
def test_bad_patterns_are_rejected(text):
    with pytest.raises(BadRequestError):
        loadgen.parse_pattern(text)


def test_trace_round_trips_byte_identically(tmp_path):
    requests = loadgen.generate_requests(
        loadgen.parse_pattern("poisson:60"), MIX, 16, seed=3
    )
    path = tmp_path / "trace.jsonl"
    loadgen.save_trace(requests, path)
    recorded = path.read_bytes()
    loaded = loadgen.load_trace(path)
    assert loaded == requests
    loadgen.save_trace(loaded, path)
    assert path.read_bytes() == recorded


def test_malformed_trace_raises_typed_error(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"index": 0}\n')
    with pytest.raises(ServiceError, match="malformed trace"):
        loadgen.load_trace(path)


def test_report_summary_and_manifest_shape():
    records = [
        loadgen.RequestRecord(
            index=i,
            route=protocol.PREDICT_ROUTE if i % 2 else protocol.SELECT_ROUTE,
            status=200 if i < 9 else 503,
            latency_s=0.01 * (i + 1),
            workload="rodinia/nw",
            method="periodic",
            error_value=0.05 if i % 2 else None,
        )
        for i in range(10)
    ]
    report = loadgen.LoadgenReport(
        records=records, duration_s=0.5, clients=4, pattern="static:10", seed=1
    )
    summary = report.summary()
    assert summary["requests"] == 10
    assert summary["http_2xx"] == 9 and summary["http_5xx"] == 1
    assert summary["p50_s"] <= summary["p90_s"] <= summary["p99_s"]
    assert summary["throughput_rps"] == pytest.approx(20.0)

    manifest = report.to_manifest()
    assert [stage.name for stage in manifest.stages] == [
        "service.loadgen",
        "service.latency.p50",
        "service.latency.p90",
        "service.latency.p99",
    ]
    # Aggregates must stay deterministic (counts only) — the regression
    # gate diffs every numeric aggregate at ~1e-6 tolerance.
    assert manifest.aggregates == {
        "requests": 10.0,
        "clients": 4.0,
        "http_2xx": 9.0,
        "http_4xx": 0.0,
        "http_5xx": 1.0,
    }
    assert manifest.workloads == (
        {"workload": "rodinia/nw", "periodic_error": 0.05},
    )
    assert manifest.stages[0].errors == 1


def test_live_run_sustains_32_clients_with_zero_5xx(service):
    requests = loadgen.generate_requests(
        loadgen.parse_pattern("poisson:200"), MIX, 48, seed=5
    )
    report = loadgen.run_loadgen(
        service.host, service.port, requests, clients=32
    )
    assert len(report.records) == 48
    counts = report.status_counts()
    assert counts["http_2xx"] == 48
    assert counts["http_5xx"] == 0 and counts["other"] == 0
    assert report.duration_s > 0
    # Served prediction errors land in the manifest's workload rows.
    manifest = report.to_manifest()
    assert manifest.aggregates["http_5xx"] == 0.0
    assert all(set(row) > {"workload"} for row in manifest.workloads)


def test_open_loop_honors_offsets(service):
    requests = loadgen.generate_requests(
        loadgen.parse_pattern("static:40"), MIX, 8, seed=2
    )
    report = loadgen.run_loadgen(
        service.host, service.port, requests, clients=4, open_loop=True
    )
    assert report.status_counts()["http_2xx"] == 8
    # 8 requests at 40 rps = last release at 0.175s; the run can't
    # finish faster than the schedule allows.
    assert report.duration_s >= 0.15
