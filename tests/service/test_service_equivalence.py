"""Property test: the serving contract is byte-identical to direct calls.

For a drawn (method, workload, jobs, cache-temperature) combination, a
``POST /v1/select`` and ``POST /v1/predict`` round trip through the full
stack — HTTP parsing, the micro-batching dispatcher, ``run_isolated``'s
supervised children, the content-addressed cache — must return exactly
the canonical projection *and* the pickle digest of a direct
:func:`~repro.evaluation.runner.evaluate_method` call. This is the
acceptance-bar property for the service PR: any nondeterminism smuggled
in by batching, process isolation, worker count or cache replay fails
the digest comparison.
"""

from __future__ import annotations

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.evaluation.context import build_context
from repro.evaluation.runner import evaluate_method
from repro.methods import list_methods
from repro.service import protocol
from repro.service.server import ServiceConfig, start_in_thread
from tests.service.conftest import Client

#: Every registered method is drawn; tiny caps keep evaluation ~tens of
#: milliseconds so the full stack stays property-testable.
METHODS = tuple(sorted(list_methods()))
WORKLOADS = ("rodinia/nw", "rodinia/lud", "cactus/gru")
CAP = 300


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    method=st.sampled_from(METHODS),
    workload=st.sampled_from(WORKLOADS),
    jobs=st.sampled_from((1, 4)),
    warm=st.booleans(),
)
def test_served_results_byte_identical_to_direct(method, workload, jobs, warm):
    direct = evaluate_method(method, build_context(workload, CAP), None)
    expected_predict = protocol.result_to_dict(direct)
    expected_predict_sha = protocol.pickle_digest(direct)
    expected_select = protocol.selection_to_dict(direct.selection)
    expected_select_sha = protocol.pickle_digest(direct.selection)

    payload = {"workload": workload, "method": method, "cap": CAP}
    with tempfile.TemporaryDirectory(prefix="service-equiv-") as cache:
        handle = start_in_thread(
            ServiceConfig(cache_dir=cache, jobs=jobs, window_s=0.002)
        )
        try:
            client = Client(handle.host, handle.port)
            try:
                if warm:
                    # Populate the cache; the asserted responses below
                    # then replay from it (from_cache telemetry proves it).
                    status, _, _ = client.post("/v1/predict", payload)
                    assert status == 200
                status, predicted, _ = client.post("/v1/predict", payload)
                assert status == 200
                status, selected, _ = client.post("/v1/select", payload)
                assert status == 200
            finally:
                client.close()
        finally:
            handle.stop()

    assert predicted["result"] == expected_predict
    assert predicted["pickle_sha256"] == expected_predict_sha
    assert selected["result"] == expected_select
    assert selected["pickle_sha256"] == expected_select_sha
    if warm:
        assert predicted["telemetry"]["from_cache"] is True
    # The select response is served from the same cached task the
    # predict populated, warm or cold.
    assert selected["telemetry"]["from_cache"] is True
