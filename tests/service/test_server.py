"""The HTTP surface end to end against a live in-process server."""

from __future__ import annotations

import json
import pickle
import socket

import pytest

from repro.core.config import SieveConfig
from repro.evaluation.context import build_context
from repro.evaluation.runner import evaluate_method
from repro.observability.export import parse_prometheus
from repro.profiling.csv_io import read_profile_csv, write_profile_csv
from repro.service import protocol


def test_healthz_reports_dispatcher_and_engine(client):
    status, body, _ = client.get("/v1/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert set(body["dispatcher"]) == {
        "requests", "coalesced", "batches", "tasks", "failures"
    }
    assert body["engine"]["jobs"] == 1 and body["engine"]["use_cache"] is True


def test_methods_lists_the_full_registry(client):
    status, body, _ = client.get("/v1/methods")
    assert status == 200
    by_name = {entry["name"]: entry for entry in body["methods"]}
    assert set(by_name) == {"sieve", "pks", "pks-two-level", "periodic", "random"}
    assert by_name["sieve"]["config_schema"] == "SieveConfig"
    assert by_name["sieve"]["defaults"]["theta"] == 0.4
    assert by_name["pks-two-level"]["defaults"]["pks"]["max_k"] >= 1


def test_served_predict_matches_direct_evaluation(client):
    payload = {"workload": "rodinia/nw", "method": "periodic", "cap": 200}
    status, body, _ = client.post("/v1/predict", payload)
    assert status == 200
    direct = evaluate_method("periodic", build_context("rodinia/nw", 200), None)
    assert body["result"] == protocol.result_to_dict(direct)
    assert body["pickle_sha256"] == protocol.pickle_digest(direct)
    assert body["request_id"].startswith("req-")
    assert body["telemetry"]["attempts"] >= 0

    status, body, _ = client.post("/v1/select", payload)
    assert status == 200
    assert body["result"] == protocol.selection_to_dict(direct.selection)
    assert body["pickle_sha256"] == protocol.pickle_digest(direct.selection)


def test_served_config_override_matches_direct(client):
    payload = {
        "workload": "rodinia/nw",
        "method": "sieve",
        "cap": 300,
        "config": {"theta": 0.8},
    }
    status, body, _ = client.post("/v1/predict", payload)
    assert status == 200
    direct = evaluate_method(
        "sieve", build_context("rodinia/nw", 300), SieveConfig(theta=0.8)
    )
    assert body["pickle_sha256"] == protocol.pickle_digest(direct)


def test_request_ids_are_unique(client):
    payload = {"workload": "rodinia/nw", "method": "periodic", "cap": 200}
    ids = {client.post("/v1/select", payload)[1]["request_id"] for _ in range(3)}
    assert len(ids) == 3


def test_inline_csv_selection_equivalence(client, tmp_path):
    table = build_context("rodinia/lud", 150).sieve_table
    path = tmp_path / "profile.csv"
    write_profile_csv(table, path)
    status, body, _ = client.post(
        "/v1/select", {"method": "sieve", "profile_csv": path.read_text()}
    )
    assert status == 200
    assert body["telemetry"]["inline"] is True
    from repro.core.pipeline import SievePipeline

    direct = SievePipeline(SieveConfig()).select(read_profile_csv(path))
    assert body["pickle_sha256"] == protocol.pickle_digest(direct)
    assert body["result"] == protocol.selection_to_dict(direct)


def test_inline_predict_is_a_400(client):
    status, body, _ = client.post(
        "/v1/predict",
        {"method": "sieve", "profile_rows": [{"kernel_name": "k", "insn_count": 1}]},
    )
    assert status == 400
    assert body["error"]["type"] == "BadRequestError"


@pytest.mark.parametrize(
    "route, payload, expected_type",
    [
        ("/v1/select", {"workload": "nope/nope"}, "BadRequestError"),
        ("/v1/select", {"workload": "rodinia/nw", "method": "zzz"}, "UnknownMethodError"),
        ("/v1/predict", {"workload": "rodinia/nw", "bogus": 1}, "BadRequestError"),
    ],
)
def test_client_errors_are_typed_400s(client, route, payload, expected_type):
    status, body, _ = client.post(route, payload)
    assert status == 400
    assert body["error"]["type"] == expected_type
    assert body["error"]["message"]


def test_malformed_json_is_a_400(client):
    client.connection.request(
        "POST", "/v1/select", body=b"{nope",
        headers={"Content-Length": "5"},
    )
    response = client.connection.getresponse()
    body = json.loads(response.read())
    assert response.status == 400
    assert body["error"]["type"] == "BadRequestError"


def test_unknown_route_and_wrong_verb(client):
    status, body, _ = client.get("/v1/nope")
    assert status == 404 and body["error"]["type"] == "NotFoundError"
    status, body, _ = client.get("/v1/select")
    assert status == 405 and body["error"]["type"] == "MethodNotAllowedError"


def test_crashing_task_is_structured_500_sibling_unaffected(client):
    # crash:1.0 makes every attempt die in the supervised child; the
    # response must carry the typed engine error for *this* request.
    status, body, _ = client.post(
        "/v1/predict",
        {
            "workload": "rodinia/cfd",
            "method": "periodic",
            "cap": 150,
            "faults": "crash:1.0",
            "fault_seed": 11,
        },
    )
    assert status == 500
    assert body["error"]["type"] == "TaskCrashError"
    assert body["error"]["context"]["workload"] == "rodinia/cfd"
    assert body["error"]["context"]["attempts"] >= 1

    status, body, _ = client.post(
        "/v1/predict", {"workload": "rodinia/nw", "method": "periodic", "cap": 200}
    )
    assert status == 200


def test_abrupt_disconnect_does_not_poison_the_server(service, client):
    # Half-send a request, then slam the socket shut mid-body.
    raw = socket.create_connection((service.host, service.port), timeout=10)
    raw.sendall(
        b"POST /v1/select HTTP/1.1\r\nContent-Length: 400\r\n\r\n{\"workload\":"
    )
    raw.close()
    status, body, _ = client.post(
        "/v1/select", {"workload": "rodinia/nw", "method": "periodic", "cap": 200}
    )
    assert status == 200


def test_metrics_expose_valid_prometheus_text(client):
    client.post("/v1/select", {"workload": "rodinia/nw", "method": "periodic", "cap": 200})
    status, text, content_type = client.get("/v1/metrics")
    assert status == 200
    assert content_type.startswith("text/plain")
    families = parse_prometheus(text)
    assert "service_requests_total" in families
    assert "service_latency_s" in families
    # The perfstore counter families are zero-registered at startup, so
    # a service that never touched the store still exposes them.
    for family in (
        "perfstore_ingest_total",
        "perfstore_lookup_total",
        "perfstore_gate_total",
    ):
        assert family in families
    select_count = sum(
        value
        for name, labels, value in families["service_requests_total"]["samples"]
        if labels.get("route") == "/v1/select" and labels.get("status") == "200"
    )
    assert select_count >= 1


def test_identical_served_results_are_cache_hits(client):
    payload = {"workload": "rodinia/srad", "method": "random", "cap": 200}
    first = client.post("/v1/predict", payload)[1]
    second = client.post("/v1/predict", payload)[1]
    assert second["telemetry"]["from_cache"] is True
    assert pickle.dumps(first["result"]) == pickle.dumps(second["result"])
    assert first["pickle_sha256"] == second["pickle_sha256"]
