"""Dispatcher concurrency: coalescing, crash isolation, cancellation.

These run against a stub engine (instant, scripted outcomes) so the
batching semantics are tested without evaluation cost; the live-engine
end of the same contract is covered in ``test_server.py``.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.evaluation.engine import EvaluationTask, TaskOutcome
from repro.service.batching import BatchingDispatcher
from repro.utils.errors import ServiceUnavailableError


class StubEngine:
    """Scripted engine: records batches, optionally blocks, never raises."""

    def __init__(self, fail_labels=(), release: threading.Event | None = None):
        self.batches: list[list[EvaluationTask]] = []
        self.fail_labels = set(fail_labels)
        self.release = release

    def run_isolated(self, tasks, policy=None):
        if self.release is not None:
            assert self.release.wait(timeout=30)
        self.batches.append(list(tasks))
        return [
            TaskOutcome(
                label=task.label,
                status="crash" if task.label in self.fail_labels else "ok",
                results=None if task.label in self.fail_labels else {},
                attempts=1,
                error="boom" if task.label in self.fail_labels else None,
            )
            for task in tasks
        ]


def task_for(label: str, cap: int = 100) -> EvaluationTask:
    return EvaluationTask(label=label, max_invocations=cap, methods=("periodic",))


def run(coroutine):
    return asyncio.run(coroutine)


def test_identical_requests_coalesce_to_one_engine_task():
    async def main():
        engine = StubEngine()
        dispatcher = BatchingDispatcher(engine, window_s=0.02)
        await dispatcher.start()
        outcomes = await asyncio.gather(
            *[dispatcher.submit(task_for("rodinia/nw")) for _ in range(6)]
        )
        await dispatcher.close()
        return engine, dispatcher, outcomes

    engine, dispatcher, outcomes = run(main())
    assert len(engine.batches) == 1 and len(engine.batches[0]) == 1
    assert dispatcher.stats.requests == 6
    assert dispatcher.stats.coalesced == 5
    assert dispatcher.stats.tasks == 1
    assert all(outcome is outcomes[0] for outcome in outcomes)


def test_distinct_requests_share_one_batch():
    async def main():
        engine = StubEngine()
        dispatcher = BatchingDispatcher(engine, window_s=0.02)
        await dispatcher.start()
        labels = ["rodinia/nw", "rodinia/lud", "rodinia/srad"]
        outcomes = await asyncio.gather(
            *[dispatcher.submit(task_for(label)) for label in labels]
        )
        await dispatcher.close()
        return engine, outcomes, labels

    engine, outcomes, labels = run(main())
    assert len(engine.batches) == 1
    assert sorted(task.label for task in engine.batches[0]) == sorted(labels)
    assert [outcome.label for outcome in outcomes] == labels


def test_max_batch_splits_oversized_flushes():
    async def main():
        engine = StubEngine()
        dispatcher = BatchingDispatcher(engine, window_s=0.02, max_batch=2)
        await dispatcher.start()
        # Distinct caps give every task a distinct cache key.
        labels = ["rodinia/nw", "rodinia/lud", "rodinia/srad",
                  "rodinia/cfd", "rodinia/nw"]
        outcomes = await asyncio.gather(
            *[dispatcher.submit(task_for(label, cap=50 + i))
              for i, label in enumerate(labels)]
        )
        await dispatcher.close()
        return engine, outcomes

    engine, outcomes = run(main())
    assert [len(batch) for batch in engine.batches] == [2, 2, 1]
    assert len(outcomes) == 5


def test_crashing_task_fails_only_its_own_requests():
    async def main():
        engine = StubEngine(fail_labels={"rodinia/lud"})
        dispatcher = BatchingDispatcher(engine, window_s=0.02)
        await dispatcher.start()
        crash, ok = await asyncio.gather(
            dispatcher.submit(task_for("rodinia/lud")),
            dispatcher.submit(task_for("rodinia/nw")),
        )
        await dispatcher.close()
        return dispatcher, crash, ok

    dispatcher, crash, ok = run(main())
    assert crash.status == "crash" and crash.error == "boom"
    assert ok.status == "ok"
    assert dispatcher.stats.failures == 1


def test_cancelled_waiter_does_not_poison_siblings():
    async def main():
        release = threading.Event()
        engine = StubEngine(release=release)
        dispatcher = BatchingDispatcher(engine, window_s=0.005)
        await dispatcher.start()
        first = asyncio.create_task(dispatcher.submit(task_for("rodinia/nw")))
        second = asyncio.create_task(dispatcher.submit(task_for("rodinia/nw")))
        other = asyncio.create_task(dispatcher.submit(task_for("rodinia/lud")))
        await asyncio.sleep(0.05)  # batch is in flight, blocked on release
        first.cancel()
        with pytest.raises(asyncio.CancelledError):
            await first
        release.set()
        second_outcome = await second
        other_outcome = await other
        await dispatcher.close()
        return second_outcome, other_outcome

    second_outcome, other_outcome = run(main())
    assert second_outcome.status == "ok"
    assert second_outcome.label == "rodinia/nw"
    assert other_outcome.status == "ok"


def test_close_fails_queued_requests_and_rejects_new_ones():
    async def main():
        # Never start the flusher: submissions stay queued.
        dispatcher = BatchingDispatcher(StubEngine(), window_s=0.02)
        waiter = asyncio.create_task(dispatcher.submit(task_for("rodinia/nw")))
        await asyncio.sleep(0.01)
        await dispatcher.close()
        with pytest.raises(ServiceUnavailableError):
            await waiter
        with pytest.raises(ServiceUnavailableError):
            await dispatcher.submit(task_for("rodinia/lud"))

    run(main())
