"""Tests for the memory-hierarchy traffic model."""

import numpy as np
import pytest

from repro.gpu.arch import AMPERE_RTX3080, SECTOR_BYTES
from repro.gpu.kernel import KernelTraits
from repro.gpu.memory import capacity_adjusted_l2_hit, memory_traffic
from tests.gpu.test_kernel import make_batch


def test_l1_filters_nominal_hit_rate():
    traits = KernelTraits(name="k", l1_hit_rate=0.75, l2_hit_rate=0.0)
    batch = make_batch(1)
    traffic = memory_traffic(AMPERE_RTX3080, traits, batch)
    sectors = float(batch.coalesced_global_loads[0] + batch.coalesced_global_stores[0])
    assert traffic.l1_sector_accesses[0] == pytest.approx(sectors)
    assert traffic.l2_sector_accesses[0] == pytest.approx(sectors * 0.25)


def test_dram_bytes_zero_when_l2_always_hits_small_footprint():
    traits = KernelTraits(name="k", l1_hit_rate=0.0, l2_hit_rate=1.0)
    batch = make_batch(1)
    traffic = memory_traffic(AMPERE_RTX3080, traits, batch)
    # Footprint is far below L2 capacity so the nominal hit rate holds.
    assert traffic.dram_bytes[0] == pytest.approx(0.0)


def test_capacity_pressure_degrades_l2_hit_rate():
    traits = KernelTraits(name="k", l2_hit_rate=0.8)
    in_cache = capacity_adjusted_l2_hit(
        AMPERE_RTX3080, traits, np.array([1024.0])
    )
    four_x = capacity_adjusted_l2_hit(
        AMPERE_RTX3080, traits, np.array([4.0 * AMPERE_RTX3080.l2_size_bytes])
    )
    assert in_cache[0] == pytest.approx(0.8)
    assert four_x[0] == pytest.approx(0.2)


def test_capacity_adjustment_is_monotone_in_footprint():
    traits = KernelTraits(name="k", l2_hit_rate=0.6)
    footprints = np.logspace(3, 10, 16)
    hits = capacity_adjusted_l2_hit(AMPERE_RTX3080, traits, footprints)
    assert np.all(np.diff(hits) <= 1e-12)


def test_atomics_counted_separately():
    traits = KernelTraits(name="k")
    batch = make_batch(1, thread_global_atomics=np.array([777], dtype=np.int64))
    traffic = memory_traffic(AMPERE_RTX3080, traits, batch)
    assert traffic.atomic_ops[0] == 777


def test_dram_bytes_are_sector_granular():
    traits = KernelTraits(name="k", l1_hit_rate=0.0, l2_hit_rate=0.0)
    batch = make_batch(1, coalesced_local_loads=np.array([10], dtype=np.int64))
    traffic = memory_traffic(AMPERE_RTX3080, traits, batch)
    sectors = float(
        batch.coalesced_global_loads[0]
        + batch.coalesced_global_stores[0]
        + batch.coalesced_local_loads[0]
    )
    assert traffic.dram_bytes[0] == pytest.approx(sectors * SECTOR_BYTES)
