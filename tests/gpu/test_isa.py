"""Tests for the miniature SASS-like ISA."""

import pytest

from repro.gpu.isa import MNEMONICS, OpClass, WarpInstruction, opclass_for_mnemonic


def test_every_opclass_has_unique_mnemonic():
    assert len(MNEMONICS) == len(OpClass)
    assert len(set(MNEMONICS.values())) == len(OpClass)


def test_mnemonic_round_trip():
    for op, mnemonic in MNEMONICS.items():
        assert opclass_for_mnemonic(mnemonic) is op


def test_memory_classification():
    assert OpClass.LOAD_GLOBAL.is_memory
    assert OpClass.STORE_SHARED.is_memory
    assert OpClass.ATOMIC.is_memory
    assert not OpClass.FP32.is_memory
    assert not OpClass.BRANCH.is_memory


def test_global_memory_classification():
    assert OpClass.LOAD_GLOBAL.is_global_memory
    assert not OpClass.LOAD_SHARED.is_global_memory


def test_active_lanes_counts_mask_bits():
    insn = WarpInstruction(opclass=OpClass.FP32, active_mask=0x0000_00FF)
    assert insn.active_lanes == 8
    full = WarpInstruction(opclass=OpClass.FP32)
    assert full.active_lanes == 32


def test_rejects_mask_wider_than_warp():
    with pytest.raises(ValueError):
        WarpInstruction(opclass=OpClass.FP32, active_mask=1 << 32)


def test_rejects_negative_address():
    with pytest.raises(ValueError):
        WarpInstruction(opclass=OpClass.LOAD_GLOBAL, address=-4)
