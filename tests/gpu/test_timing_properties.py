"""Property-based tests for the interval timing model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.arch import AMPERE_RTX3080, TURING_RTX2080TI
from repro.gpu.kernel import InvocationBatch, KernelTraits
from repro.gpu.timing import invocation_timing


@st.composite
def kernel_traits(draw):
    fp = draw(st.floats(min_value=0.1, max_value=0.85))
    return KernelTraits(
        name="prop",
        regs_per_thread=draw(st.sampled_from([32, 48, 64])),
        smem_per_cta=draw(st.sampled_from([0, 16 * 1024, 48 * 1024])),
        ilp=draw(st.floats(min_value=1.0, max_value=4.0)),
        l1_hit_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
        l2_hit_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
        fp_ratio=fp,
        sfu_ratio=draw(st.floats(min_value=0.0, max_value=min(0.1, 1 - fp))),
        personality=draw(st.floats(min_value=0.3, max_value=3.0)),
        measurement_noise_cov=0.0,
    )


@st.composite
def batches(draw):
    insn = draw(st.integers(min_value=100_000, max_value=10**10))
    cta = draw(st.sampled_from([64, 128, 256, 512, 1024]))
    ctas = draw(st.integers(min_value=1, max_value=100_000))
    load_rate = draw(st.floats(min_value=0.0, max_value=0.15))
    n = 1
    loads = int(insn * load_rate)
    return InvocationBatch(
        insn_count=np.array([insn], dtype=np.int64),
        cta_size=np.array([cta], dtype=np.int32),
        num_ctas=np.array([ctas], dtype=np.int64),
        coalesced_global_loads=np.array([loads // 32], dtype=np.int64),
        coalesced_global_stores=np.array([loads // 64], dtype=np.int64),
        coalesced_local_loads=np.zeros(n, dtype=np.int64),
        thread_global_loads=np.array([loads], dtype=np.int64),
        thread_global_stores=np.array([loads // 2], dtype=np.int64),
        thread_local_loads=np.zeros(n, dtype=np.int64),
        thread_shared_loads=np.zeros(n, dtype=np.int64),
        thread_shared_stores=np.zeros(n, dtype=np.int64),
        thread_global_atomics=np.zeros(n, dtype=np.int64),
        divergence_efficiency=np.array(
            [draw(st.floats(min_value=0.5, max_value=1.0))]
        ),
        chrono_index=np.zeros(n, dtype=np.int64),
    )


@settings(max_examples=60, deadline=None)
@given(traits=kernel_traits(), batch=batches())
def test_cycles_are_finite_positive_and_above_overhead(traits, batch):
    for arch in (AMPERE_RTX3080, TURING_RTX2080TI):
        timing = invocation_timing(arch, traits, batch)
        assert np.all(np.isfinite(timing.total_cycles))
        assert timing.total_cycles[0] > 0
        # Launch overhead is a hard floor.
        assert timing.total_cycles[0] >= arch.kernel_launch_overhead_cycles


@settings(max_examples=40, deadline=None)
@given(traits=kernel_traits(), batch=batches())
def test_doubling_work_never_speeds_execution(traits, batch):
    import dataclasses

    doubled = dataclasses.replace(
        batch,
        insn_count=batch.insn_count * 2,
        thread_global_loads=batch.thread_global_loads * 2,
        thread_global_stores=batch.thread_global_stores * 2,
        coalesced_global_loads=batch.coalesced_global_loads * 2,
        coalesced_global_stores=batch.coalesced_global_stores * 2,
    )
    base = invocation_timing(AMPERE_RTX3080, traits, batch)
    more = invocation_timing(AMPERE_RTX3080, traits, doubled)
    assert more.total_cycles[0] >= base.total_cycles[0]


@settings(max_examples=40, deadline=None)
@given(traits=kernel_traits(), batch=batches())
def test_better_cache_behaviour_never_hurts(traits, batch):
    import dataclasses

    worse = dataclasses.replace(traits, l1_hit_rate=0.0, l2_hit_rate=0.0)
    better = dataclasses.replace(traits, l1_hit_rate=1.0, l2_hit_rate=1.0)
    slow = invocation_timing(AMPERE_RTX3080, worse, batch)
    fast = invocation_timing(AMPERE_RTX3080, better, batch)
    assert fast.total_cycles[0] <= slow.total_cycles[0] * (1 + 1e-9)
