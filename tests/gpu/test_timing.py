"""Tests for the interval timing model."""


import numpy as np
import pytest

from repro.gpu.arch import AMPERE_RTX3080, TURING_RTX2080TI
from repro.gpu.kernel import KernelTraits
from repro.gpu.timing import invocation_timing
from tests.gpu.test_kernel import make_batch


def traits(**overrides):
    defaults = dict(name="k", measurement_noise_cov=0.0)
    defaults.update(overrides)
    return KernelTraits(**defaults)


def big_batch(scale: float = 1.0, n: int = 1):
    """A comfortably multi-wave invocation (1e9 x scale instructions)."""
    insn = int(1e9 * scale)
    return make_batch(
        n,
        insn_count=np.full(n, insn, dtype=np.int64),
        num_ctas=np.full(n, max(int(2000 * scale), 1), dtype=np.int64),
        thread_global_loads=np.full(n, int(insn * 0.05), dtype=np.int64),
        thread_global_stores=np.full(n, int(insn * 0.02), dtype=np.int64),
        coalesced_global_loads=np.full(n, int(insn * 0.05 / 32), dtype=np.int64),
        coalesced_global_stores=np.full(n, int(insn * 0.02 / 32), dtype=np.int64),
        thread_shared_loads=np.zeros(n, dtype=np.int64),
        thread_shared_stores=np.zeros(n, dtype=np.int64),
    )


def test_more_instructions_take_more_cycles():
    small = invocation_timing(AMPERE_RTX3080, traits(), big_batch(0.5))
    large = invocation_timing(AMPERE_RTX3080, traits(), big_batch(2.0))
    assert large.total_cycles[0] > small.total_cycles[0]


def test_cycles_scale_roughly_linearly_in_steady_state():
    one = invocation_timing(AMPERE_RTX3080, traits(), big_batch(1.0)).total_cycles[0]
    four = invocation_timing(AMPERE_RTX3080, traits(), big_batch(4.0)).total_cycles[0]
    assert four / one == pytest.approx(4.0, rel=0.15)


def test_ipc_is_size_stable_for_large_grids():
    """The premise Sieve relies on: same kernel + similar work => similar
    IPC, once grids span several waves."""
    a = big_batch(1.0)
    b = big_batch(3.0)
    ta = invocation_timing(AMPERE_RTX3080, traits(), a)
    tb = invocation_timing(AMPERE_RTX3080, traits(), b)
    ipc_a = a.insn_count[0] / ta.total_cycles[0]
    ipc_b = b.insn_count[0] / tb.total_cycles[0]
    assert ipc_a == pytest.approx(ipc_b, rel=0.1)


def test_small_grids_achieve_lower_ipc():
    big = big_batch(1.0)
    tiny = make_batch(
        1,
        insn_count=np.array([int(1e7)], dtype=np.int64),
        num_ctas=np.array([4], dtype=np.int64),
    )
    ipc_big = big.insn_count[0] / invocation_timing(
        AMPERE_RTX3080, traits(), big
    ).total_cycles[0]
    ipc_tiny = tiny.insn_count[0] / invocation_timing(
        AMPERE_RTX3080, traits(), tiny
    ).total_cycles[0]
    assert ipc_tiny < ipc_big * 0.5


def test_memory_bound_kernel_limited_by_bandwidth():
    heavy = traits(l1_hit_rate=0.0, l2_hit_rate=0.0)
    batch = big_batch(1.0)
    # Poorly coalesced streaming: 8 transactions per warp-level access.
    batch.coalesced_global_loads[:] = batch.thread_global_loads // 4
    timing = invocation_timing(AMPERE_RTX3080, heavy, batch)
    assert timing.memory_cycles[0] > timing.compute_cycles[0]
    # More DRAM bandwidth (Ampere over Turing) must shrink the memory
    # interval in cycle terms.
    turing = invocation_timing(TURING_RTX2080TI, heavy, batch)
    assert timing.memory_cycles[0] < turing.memory_cycles[0] * (
        TURING_RTX2080TI.bytes_per_cycle / AMPERE_RTX3080.bytes_per_cycle
    ) * 1.05


def test_personality_scales_cycles():
    base = invocation_timing(AMPERE_RTX3080, traits(), big_batch())
    slow = invocation_timing(
        AMPERE_RTX3080, traits(personality=2.0), big_batch()
    )
    assert slow.total_cycles[0] == pytest.approx(
        base.total_cycles[0] * 2.0, rel=0.05
    )


def test_arch_efficiency_multiplier_applies_per_family():
    turing_biased = traits(arch_efficiency={"turing": 0.5})
    batch = big_batch()
    on_ampere_base = invocation_timing(AMPERE_RTX3080, traits(), batch)
    on_ampere_biased = invocation_timing(AMPERE_RTX3080, turing_biased, batch)
    on_turing_base = invocation_timing(TURING_RTX2080TI, traits(), batch)
    on_turing_biased = invocation_timing(TURING_RTX2080TI, turing_biased, batch)
    assert on_ampere_biased.total_cycles[0] == pytest.approx(
        on_ampere_base.total_cycles[0]
    )
    assert on_turing_biased.total_cycles[0] == pytest.approx(
        on_turing_base.total_cycles[0] * 0.5, rel=0.05
    )


def test_fp_heavy_kernels_gain_more_from_ampere():
    """Ampere's doubled FP32 datapath should favour FP-heavy kernels."""
    batch = big_batch()
    fp_heavy = traits(fp_ratio=0.85, sfu_ratio=0.0, l1_hit_rate=0.9, l2_hit_rate=0.9)
    int_heavy = traits(fp_ratio=0.05, sfu_ratio=0.0, l1_hit_rate=0.9, l2_hit_rate=0.9)

    def cycles(arch, t):
        return invocation_timing(arch, t, batch).total_cycles[0]

    fp_gain = cycles(TURING_RTX2080TI, fp_heavy) / cycles(AMPERE_RTX3080, fp_heavy)
    int_gain = cycles(TURING_RTX2080TI, int_heavy) / cycles(AMPERE_RTX3080, int_heavy)
    assert fp_gain > int_gain


def test_divergence_inflates_cycles():
    divergent = big_batch()
    divergent.divergence_efficiency[:] = 0.5
    converged = big_batch()
    converged.divergence_efficiency[:] = 1.0
    t_div = invocation_timing(AMPERE_RTX3080, traits(), divergent)
    t_conv = invocation_timing(AMPERE_RTX3080, traits(), converged)
    assert t_div.total_cycles[0] > t_conv.total_cycles[0]
