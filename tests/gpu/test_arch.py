"""Tests for GPU architecture configurations."""

import dataclasses

import pytest

from repro.gpu.arch import (
    AMPERE_RTX3080,
    TURING_RTX2080TI,
    WARP_SIZE,
    GpuArchitecture,
    architecture_by_name,
)


def test_paper_baseline_matches_section_iv():
    assert AMPERE_RTX3080.num_sms == 68
    assert AMPERE_RTX3080.memory_gb == 10.0
    assert AMPERE_RTX3080.dram_bandwidth_gbs == 760.0
    assert AMPERE_RTX3080.family == "ampere"


def test_paper_turing_matches_section_iv():
    assert TURING_RTX2080TI.num_sms == 68
    assert TURING_RTX2080TI.memory_gb == 11.0
    assert TURING_RTX2080TI.dram_bandwidth_gbs == 616.0
    assert TURING_RTX2080TI.family == "turing"


def test_ampere_doubles_fp32_datapath_over_turing():
    assert AMPERE_RTX3080.fp32_lanes_per_sm == 2 * TURING_RTX2080TI.fp32_lanes_per_sm
    assert AMPERE_RTX3080.int32_lanes_per_sm == TURING_RTX2080TI.int32_lanes_per_sm


def test_bytes_per_cycle():
    assert AMPERE_RTX3080.bytes_per_cycle == pytest.approx(760.0 / 1.710)


def test_warp_throughput_in_warp_instructions():
    assert AMPERE_RTX3080.warp_throughput(WARP_SIZE) == 1.0
    assert AMPERE_RTX3080.warp_throughput(128) == 4.0


def test_lookup_by_name():
    assert architecture_by_name("rtx3080") is AMPERE_RTX3080
    assert architecture_by_name("rtx2080ti") is TURING_RTX2080TI


def test_lookup_unknown_name_lists_known():
    with pytest.raises(KeyError, match="rtx3080"):
        architecture_by_name("h100")


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        dataclasses.replace(AMPERE_RTX3080, num_sms=0)
    with pytest.raises(ValueError):
        dataclasses.replace(AMPERE_RTX3080, dram_bandwidth_gbs=-1.0)
