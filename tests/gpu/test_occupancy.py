"""Tests for the occupancy calculator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.arch import AMPERE_RTX3080, TURING_RTX2080TI
from repro.gpu.kernel import KernelTraits
from repro.gpu.occupancy import occupancy_for, occupancy_table


def traits(**overrides):
    defaults = dict(name="k", regs_per_thread=32, smem_per_cta=0)
    defaults.update(overrides)
    return KernelTraits(**defaults)


def test_thread_limited_occupancy():
    # 256-thread CTAs on Ampere (1536 threads/SM): 6 CTAs by threads.
    result = occupancy_for(AMPERE_RTX3080, traits(), 256)
    assert result.ctas_per_sm == 6
    assert result.active_warps_per_sm == 48
    assert result.limiter in ("threads", "warps")


def test_register_limited_occupancy():
    # 64 regs/thread x 256 threads = 16384 regs/CTA -> 4 CTAs in a 64K file.
    result = occupancy_for(AMPERE_RTX3080, traits(regs_per_thread=64), 256)
    assert result.ctas_per_sm == 4
    assert result.limiter == "registers"


def test_shared_memory_limited_occupancy():
    result = occupancy_for(AMPERE_RTX3080, traits(smem_per_cta=48 * 1024), 128)
    assert result.ctas_per_sm == 2
    assert result.limiter == "shared_memory"


def test_cta_slot_limited_for_tiny_blocks():
    result = occupancy_for(AMPERE_RTX3080, traits(), 32)
    assert result.ctas_per_sm == AMPERE_RTX3080.max_ctas_per_sm
    assert result.limiter == "ctas"


def test_turing_holds_fewer_threads_than_ampere():
    ampere = occupancy_for(AMPERE_RTX3080, traits(), 512)
    turing = occupancy_for(TURING_RTX2080TI, traits(), 512)
    assert turing.ctas_per_sm < ampere.ctas_per_sm


def test_unlaunchable_kernel_raises():
    # 1024 threads x 64 regs = 65536 fits exactly; 1024 x 80 would not,
    # but traits cap at launchable configs — so force it via shared memory.
    big_smem = traits(smem_per_cta=AMPERE_RTX3080.shared_memory_per_sm + 1)
    with pytest.raises(ValueError, match="cannot launch"):
        occupancy_for(AMPERE_RTX3080, big_smem, 256)


def test_occupancy_table_matches_scalar_path():
    sizes = np.array([64, 256, 64, 1024], dtype=np.int32)
    ctas, warps = occupancy_table(AMPERE_RTX3080, traits(), sizes)
    for i, size in enumerate(sizes):
        scalar = occupancy_for(AMPERE_RTX3080, traits(), int(size))
        assert ctas[i] == scalar.ctas_per_sm
        assert warps[i] == scalar.active_warps_per_sm


@given(cta_size=st.integers(min_value=1, max_value=1024),
       regs=st.sampled_from([32, 40, 48, 56, 64]))
def test_occupancy_respects_hardware_limits(cta_size, regs):
    arch = AMPERE_RTX3080
    result = occupancy_for(arch, traits(regs_per_thread=regs), cta_size)
    assert result.ctas_per_sm >= 1
    assert result.active_warps_per_sm <= arch.max_warps_per_sm
    warps_per_cta = -(-cta_size // 32)
    assert result.ctas_per_sm * warps_per_cta * 32 <= arch.max_threads_per_sm + 31 * warps_per_cta
    assert result.ctas_per_sm * warps_per_cta * 32 * regs <= arch.registers_per_sm + 0
