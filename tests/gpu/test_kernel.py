"""Tests for KernelTraits and InvocationBatch."""

import numpy as np
import pytest

from repro.gpu.kernel import PKS_METRIC_NAMES, InvocationBatch, KernelTraits


def make_batch(n=4, **overrides):
    columns = dict(
        insn_count=np.full(n, 1_000_000, dtype=np.int64),
        cta_size=np.full(n, 256, dtype=np.int32),
        num_ctas=np.full(n, 100, dtype=np.int64),
        coalesced_global_loads=np.full(n, 1000, dtype=np.int64),
        coalesced_global_stores=np.full(n, 500, dtype=np.int64),
        coalesced_local_loads=np.zeros(n, dtype=np.int64),
        thread_global_loads=np.full(n, 32_000, dtype=np.int64),
        thread_global_stores=np.full(n, 16_000, dtype=np.int64),
        thread_local_loads=np.zeros(n, dtype=np.int64),
        thread_shared_loads=np.full(n, 8_000, dtype=np.int64),
        thread_shared_stores=np.full(n, 4_000, dtype=np.int64),
        thread_global_atomics=np.zeros(n, dtype=np.int64),
        divergence_efficiency=np.full(n, 0.9),
        chrono_index=np.arange(n, dtype=np.int64),
    )
    columns.update(overrides)
    return InvocationBatch(**columns)


class TestKernelTraits:
    def test_int_ratio_complements_fp_and_sfu(self):
        traits = KernelTraits(name="k", fp_ratio=0.6, sfu_ratio=0.1)
        assert traits.int_ratio == pytest.approx(0.3)

    def test_arch_efficiency_defaults_to_one(self):
        traits = KernelTraits(name="k", arch_efficiency={"turing": 0.8})
        assert traits.efficiency_on("turing") == 0.8
        assert traits.efficiency_on("ampere") == 1.0

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            KernelTraits(name="")

    def test_rejects_mix_exceeding_one(self):
        with pytest.raises(ValueError):
            KernelTraits(name="k", fp_ratio=0.9, sfu_ratio=0.2)

    def test_rejects_hit_rate_out_of_range(self):
        with pytest.raises(ValueError):
            KernelTraits(name="k", l1_hit_rate=1.5)


class TestInvocationBatch:
    def test_length(self):
        assert len(make_batch(7)) == 7

    def test_warps_per_cta_rounds_up(self):
        batch = make_batch(cta_size=np.array([1, 32, 33, 256], dtype=np.int32))
        assert batch.warps_per_cta.tolist() == [1, 1, 2, 8]

    def test_total_threads(self):
        batch = make_batch(2, cta_size=np.array([128, 128], dtype=np.int32),
                           num_ctas=np.array([4, 8], dtype=np.int64))
        assert batch.total_threads.tolist() == [512, 1024]

    def test_pks_metric_matrix_column_order(self):
        batch = make_batch(3)
        matrix = batch.pks_metric_matrix()
        assert matrix.shape == (3, 12)
        insn_column = PKS_METRIC_NAMES.index("instruction_count")
        assert np.all(matrix[:, insn_column] == 1_000_000)
        blocks_column = PKS_METRIC_NAMES.index("num_thread_blocks")
        assert np.all(matrix[:, blocks_column] == 100)

    def test_rejects_misaligned_columns(self):
        with pytest.raises(ValueError):
            make_batch(4, cta_size=np.full(3, 256, dtype=np.int32))

    def test_rejects_nonpositive_instruction_counts(self):
        with pytest.raises(ValueError):
            make_batch(2, insn_count=np.array([100, 0], dtype=np.int64))

    def test_rejects_divergence_out_of_range(self):
        with pytest.raises(ValueError):
            make_batch(2, divergence_efficiency=np.array([0.9, 1.2]))
