"""Tests for the hardware executor (golden-reference measurements)."""

import numpy as np
import pytest

from repro.gpu import AMPERE_RTX3080, TURING_RTX2080TI, HardwareExecutor
from repro.workloads.generator import generate
from tests.conftest import make_spec


def test_measurement_is_deterministic(toy_run):
    a = HardwareExecutor(AMPERE_RTX3080).measure(toy_run)
    b = HardwareExecutor(AMPERE_RTX3080).measure(toy_run)
    assert a.total_cycles == b.total_cycles
    for name in a.per_kernel:
        assert np.array_equal(a.per_kernel[name].cycles, b.per_kernel[name].cycles)


def test_total_cycles_sums_kernels(toy_measurement):
    assert toy_measurement.total_cycles == sum(
        m.total_cycles for m in toy_measurement.per_kernel.values()
    )


def test_total_instructions_matches_run(toy_run, toy_measurement):
    assert toy_measurement.total_instructions == toy_run.total_instructions


def test_ipc_consistency(toy_measurement):
    assert toy_measurement.ipc() == pytest.approx(
        toy_measurement.total_instructions / toy_measurement.total_cycles
    )


def test_wall_time_uses_clock(toy_measurement):
    expected = toy_measurement.total_cycles / (AMPERE_RTX3080.clock_ghz * 1e9)
    assert toy_measurement.wall_time_seconds == pytest.approx(expected)


def test_per_kernel_measurement_covers_every_kernel(toy_run, toy_measurement):
    assert set(toy_measurement.per_kernel) == {
        k.traits.name for k in toy_run.kernels
    }
    for kernel in toy_run.kernels:
        measured = toy_measurement.per_kernel[kernel.traits.name]
        assert len(measured.cycles) == len(kernel)


def test_measurement_noise_has_configured_scale():
    noisy_spec = make_spec(name="noisy", measurement_noise_cov=0.05,
                           tier_fractions=(1.0, 0.0, 0.0))
    run = generate(noisy_spec)
    measurement = HardwareExecutor(AMPERE_RTX3080).measure(run)
    # Tier-1 kernels execute identical work, so per-kernel cycle CoV is
    # (almost) exactly the measurement noise.
    kernel = max(run.kernels, key=len)
    cycles = measurement.per_kernel[kernel.traits.name].cycles.astype(float)
    cov = cycles.std() / cycles.mean()
    assert 0.02 < cov < 0.10


def test_architectures_measure_differently(toy_run):
    ampere = HardwareExecutor(AMPERE_RTX3080).measure(toy_run)
    turing = HardwareExecutor(TURING_RTX2080TI).measure(toy_run)
    assert ampere.total_cycles != turing.total_cycles
    assert ampere.architecture == "rtx3080"
    assert turing.architecture == "rtx2080ti"


def test_kernel_ipc_vector(toy_measurement):
    for measured in toy_measurement.per_kernel.values():
        ipc = measured.ipc
        assert np.all(ipc > 0)
        assert len(ipc) == len(measured.cycles)
