"""Campaign tests: byte-determinism, checkpoint/resume, chaos survival.

These run real (tiny) campaigns — budget 3-4 at a 400-invocation cap —
so they exercise the full candidate → engine → score → shrink → report
path, not mocks. Findings files must be byte-identical for a fixed
config regardless of caching, interruption or injected task faults.
"""

import json

import pytest

from repro.evaluation.engine import EngineConfig, EvaluationEngine
from repro.fuzz.campaign import (
    CHECKPOINT_SCHEMA,
    FuzzConfig,
    load_findings,
    run_campaign,
)
from repro.utils.errors import CheckpointError, FuzzError

SEED = "pytest-fuzz"


def config_for(out_dir, **overrides):
    fields = dict(
        seed=SEED,
        budget=3,
        methods=("sieve",),
        max_invocations=400,
        threshold=0.0,  # every scored candidate is a finding
        top_k=1,
        shrink_steps=3,
        deadline_s=120.0,
        max_attempts=2,
        out_dir=out_dir,
    )
    fields.update(overrides)
    return FuzzConfig(**fields)


def engine_for(tmp_path, jobs=1):
    return EvaluationEngine(
        EngineConfig(
            jobs=jobs,
            cache_dir=tmp_path / "cache",
            quarantine_path=tmp_path / "quarantine.json",
        )
    )


def test_config_validation():
    with pytest.raises(FuzzError):
        FuzzConfig(budget=0)
    with pytest.raises(FuzzError):
        FuzzConfig(methods=())
    with pytest.raises(FuzzError):
        FuzzConfig(fault_rate=1.5)
    with pytest.raises(FuzzError):
        FuzzConfig(chaos="nan:0.1").chaos_plan()  # data mode is not chaos


def test_fingerprint_ignores_budget_but_not_seed():
    base = config_for("out")
    assert base.fingerprint() == config_for("out", budget=50).fingerprint()
    assert base.fingerprint() != config_for("out", seed="other").fingerprint()
    assert base.fingerprint() != config_for("out", threshold=0.2).fingerprint()


def test_campaign_is_byte_deterministic(tmp_path):
    engine = engine_for(tmp_path)
    first = run_campaign(config_for(tmp_path / "a"), engine=engine)
    second = run_campaign(config_for(tmp_path / "b"), engine=engine)
    assert first.scored == second.scored == 3
    bytes_a = first.findings_path.read_bytes()
    bytes_b = second.findings_path.read_bytes()
    assert bytes_a == bytes_b
    payload = load_findings(first.findings_path)
    assert payload["summary"]["scored"] == 3
    assert len(payload["findings"]) == payload["summary"]["findings"] == 1
    finding = payload["findings"][0]
    assert finding["shrunk_score"]["score"] >= 0.0
    assert finding["repro"].startswith(f"sieve-repro fuzz --seed {SEED}")


def test_interrupted_campaign_resumes_to_identical_findings(tmp_path):
    engine = engine_for(tmp_path)
    out = tmp_path / "resumed"
    paused = run_campaign(config_for(out, stop_after=2), engine=engine)
    assert paused.stopped_early
    assert paused.findings_path is None
    assert paused.scored == 2
    checkpoint = json.loads(paused.checkpoint_path.read_text())
    assert checkpoint["schema"] == CHECKPOINT_SCHEMA
    assert len(checkpoint["scored"]) == 2

    resumed = run_campaign(config_for(out), engine=engine, resume=True)
    assert not resumed.stopped_early
    assert resumed.scored == 3

    fresh = run_campaign(config_for(tmp_path / "fresh"), engine=engine)
    assert resumed.findings_path.read_bytes() == fresh.findings_path.read_bytes()


def test_resume_rejects_mismatched_config(tmp_path):
    engine = engine_for(tmp_path)
    out = tmp_path / "out"
    run_campaign(config_for(out, stop_after=1), engine=engine)
    with pytest.raises(CheckpointError):
        run_campaign(config_for(out, seed="other"), engine=engine, resume=True)


def test_resume_rejects_corrupt_checkpoint(tmp_path):
    out = tmp_path / "out"
    out.mkdir()
    (out / "checkpoint.json").write_text("{not json")
    with pytest.raises(CheckpointError):
        run_campaign(config_for(out), engine=engine_for(tmp_path), resume=True)


def test_chaos_changes_statuses_but_never_surviving_findings(tmp_path):
    """Task-surface chaos exercises retries/isolation without touching
    data: candidates that survive score identically to a clean run."""
    engine = engine_for(tmp_path)
    clean = run_campaign(config_for(tmp_path / "clean", budget=4), engine=engine)
    chaotic = run_campaign(
        config_for(
            tmp_path / "chaos",
            budget=4,
            chaos="task_error:0.4",
            max_attempts=1,  # one strike: failures stay failed
        ),
        engine=engine_for(tmp_path / "chaos-engine"),
    )
    clean_scores = {
        record["index"]: record["score"]["score"]
        for record in json.loads(
            (tmp_path / "clean" / "checkpoint.json").read_text()
        )["scored"].values()
    }
    chaotic_records = json.loads(
        (tmp_path / "chaos" / "checkpoint.json").read_text()
    )["scored"]
    survivors = 0
    for record in chaotic_records.values():
        if record["status"] == "ok":
            survivors += 1
            assert record["score"]["score"] == clean_scores[record["index"]]
    assert survivors >= 1


def test_load_findings_rejects_garbage(tmp_path):
    path = tmp_path / "findings.json"
    path.write_text("{}")
    with pytest.raises(FuzzError):
        load_findings(path)
    path.write_text("not json")
    with pytest.raises(FuzzError):
        load_findings(path)
