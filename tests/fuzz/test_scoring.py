"""Scoring arithmetic: pure functions over already-computed results."""

import pytest

from repro.fuzz.scoring import (
    CandidateScore,
    GaugeViolations,
    ScoreWeights,
    gauge_violations,
    score_results,
)
from repro.observability.attribution import ErrorAttribution, StratumHealth


def health(cov_drift=0.0, rep_distance=0.0, split_balance=1.0):
    return StratumHealth(
        group="k0:t1",
        kernel_name="k0",
        tier="tier1",
        size=10,
        occupancy=0.5,
        insn_cov=0.4,
        cov_drift=cov_drift,
        rep_distance=rep_distance,
        split_balance=split_balance,
    )


def attribution_with(*healths):
    return ErrorAttribution(
        workload="w",
        method="sieve",
        predicted_cycles=1.0,
        measured_cycles=1.0,
        signed_error=0.0,
        per_kernel=(),
        per_group=(),
        groups_partition=True,
        health=tuple(healths),
    )


class FakeResult:
    """Duck-typed MethodResult: scoring only reads error + attribution."""

    def __init__(self, error, attribution=None):
        self.error = error
        self.attribution = attribution


def test_gauge_violations_empty():
    assert gauge_violations(None) == GaugeViolations()
    assert gauge_violations(attribution_with()) == GaugeViolations()


def test_gauge_violations_aggregation():
    violations = gauge_violations(
        attribution_with(
            health(cov_drift=0.2, rep_distance=0.1, split_balance=0.8),
            health(cov_drift=-0.3, rep_distance=0.7, split_balance=0.05),
        )
    )
    # Positive drifts sum; negative drift (within target) is ignored.
    assert violations.cov_drift == pytest.approx(0.2)
    assert violations.rep_distance == pytest.approx(0.7)
    assert violations.split_imbalance == pytest.approx(0.95)
    # Stratum 1 violates drift, stratum 2 violates rep + split.
    assert violations.strata == 2


def test_score_leads_with_worst_method_error():
    results = {
        "sieve": FakeResult(error=-0.02),
        "pks": FakeResult(error=0.15),
    }
    score = score_results(results)
    assert score.worst_method == "pks"
    assert score.max_error == pytest.approx(0.15)
    assert score.score == pytest.approx(0.15)  # no sieve attribution
    assert score.errors == (("pks", 0.15), ("sieve", 0.02))


def test_score_ties_break_lexicographically():
    results = {"sieve": FakeResult(0.1), "pks": FakeResult(0.1)}
    assert score_results(results).worst_method == "sieve"


def test_violations_inflate_score_with_weights():
    attribution = attribution_with(
        health(cov_drift=0.4, rep_distance=0.2, split_balance=0.5)
    )
    results = {"sieve": FakeResult(error=0.1, attribution=attribution)}
    weights = ScoreWeights(cov_drift=1.0, rep_distance=2.0, split_imbalance=4.0)
    score = score_results(results, weights)
    assert score.max_error == pytest.approx(0.1)
    assert score.score == pytest.approx(0.1 + 1.0 * 0.4 + 2.0 * 0.2 + 4.0 * 0.5)


def test_candidate_score_round_trips_through_dict():
    attribution = attribution_with(
        health(cov_drift=0.3, rep_distance=0.6, split_balance=0.2)
    )
    score = score_results(
        {"sieve": FakeResult(0.07, attribution), "pks": FakeResult(0.21)}
    )
    assert CandidateScore.from_dict(score.to_dict()) == score
