"""Regression fence: the committed adversarial suite must reproduce.

Each entry in ``repro.workloads.adversarial`` pins the prediction errors
measured when its fuzz finding was promoted. The pipeline is fully
deterministic, so any drift here is a real behaviour change in
generation, selection or prediction — not noise.
"""

from repro.evaluation.engine import EngineConfig, EvaluationEngine
from repro.workloads.adversarial import (
    ADVERSARIAL_ENTRIES,
    ADVERSARIAL_SPECS,
    verify_suite,
)
from repro.workloads.catalog import all_specs, spec_for, specs_for_suites


def test_suite_has_at_least_three_entries():
    assert len(ADVERSARIAL_ENTRIES) >= 3
    assert len(ADVERSARIAL_SPECS) == len(ADVERSARIAL_ENTRIES)


def test_entries_carry_provenance_and_pins():
    for entry in ADVERSARIAL_ENTRIES:
        assert entry.spec.suite == "adversarial"
        assert entry.campaign
        assert entry.source_index >= 0
        assert entry.note
        assert entry.expected_errors
        for method, error in entry.expected_errors.items():
            assert method in ("sieve", "pks")
            assert 0.0 <= error < 1.0
    # At least one entry must be adversarial *for* each headline method.
    worst = {
        max(entry.expected_errors, key=entry.expected_errors.get)
        for entry in ADVERSARIAL_ENTRIES
    }
    assert worst == {"sieve", "pks"}


def test_catalog_resolves_suite_without_polluting_table_one():
    # The paper's figures are defined over exactly the 40 Table I
    # workloads; the adversarial suite must not leak into them.
    table_one = all_specs()
    assert len(table_one) == 40
    assert not any(spec.suite == "adversarial" for spec in table_one)
    # ...but every entry is addressable through the catalog.
    for entry in ADVERSARIAL_ENTRIES:
        assert spec_for(entry.label) == entry.spec
    suite = specs_for_suites(("adversarial",))
    assert tuple(suite) == ADVERSARIAL_SPECS


def test_pinned_errors_reproduce(tmp_path):
    engine = EvaluationEngine(
        EngineConfig(jobs=1, use_cache=True, cache_dir=tmp_path / "cache")
    )
    rows = verify_suite(engine=engine)
    assert len(rows) == sum(len(e.expected_errors) for e in ADVERSARIAL_ENTRIES)
    drifted = [
        f"{row['label']}/{row['method']}: expected {row['expected']}, "
        f"got {row['actual']}"
        for row in rows
        if not row["ok"]
    ]
    assert not drifted, "\n".join(drifted)
