"""Mutation-space tests: candidates are valid, deterministic and local.

``make_candidate(seed, i)`` must be a pure function of its arguments —
that property is what makes campaigns resumable (scored indices can be
skipped and regenerated) and findings reproducible from their seed.
"""

import dataclasses

import pytest

from repro.fuzz.mutation import (
    DATA_FAULT_MODES,
    Candidate,
    get_knob,
    make_candidate,
    mutable_knobs,
    plan_from_dict,
    plan_to_dict,
)
from repro.robustness.faults import FAULT_MODES, FaultPlan, FaultSpec
from repro.workloads.catalog import spec_for

SEED = "pytest-fuzz"


def test_make_candidate_is_pure():
    for index in range(8):
        first = make_candidate(SEED, index)
        second = make_candidate(SEED, index)
        assert first == second
        assert first.spec == second.spec
        assert first.fault_plan == second.fault_plan


def test_candidates_differ_across_indices_and_seeds():
    specs = {make_candidate(SEED, i).spec for i in range(8)}
    assert len(specs) == 8
    assert make_candidate(SEED, 0) != make_candidate("other-seed", 0)


@pytest.mark.parametrize("index", range(30))
def test_candidate_specs_are_valid(index):
    candidate = make_candidate(SEED, index)
    spec = candidate.spec
    # Identity: campaign-addressable label, traceable ancestry.
    assert spec.suite == "fuzz"
    assert spec.name == f"{SEED}-{index:04d}"
    assert candidate.label == f"fuzz/{SEED}-{index:04d}"
    spec_for(candidate.base_label)  # base must resolve in the catalog
    # Structural invariants the generator relies on.
    assert 1 <= spec.alias_groups <= spec.num_kernels
    assert spec.num_invocations >= spec.num_kernels
    assert abs(sum(spec.tier_fractions) - 1.0) < 1e-9
    # Fault plans only ever corrupt data; task-surface chaos is layered
    # separately by the campaign config.
    if candidate.fault_plan is not None:
        for fault in candidate.fault_plan.specs:
            assert fault.mode in DATA_FAULT_MODES
            assert "task" not in FAULT_MODES[fault.mode]
            assert 0.0 < fault.rate <= 0.15


def test_candidate_mutates_knobs_away_from_base():
    mutated_any = False
    for index in range(10):
        candidate = make_candidate(SEED, index)
        base = spec_for(candidate.base_label)
        diffs = [
            knob
            for knob in mutable_knobs()
            if get_knob(candidate.spec, knob) != get_knob(base, knob)
        ]
        if diffs:
            mutated_any = True
    assert mutated_any


def test_candidate_round_trips_through_dict():
    for index in (0, 3, 7):
        candidate = make_candidate(SEED, index)
        clone = Candidate.from_dict(candidate.to_dict())
        assert clone == candidate
        assert dataclasses.asdict(clone.spec) == dataclasses.asdict(candidate.spec)


def test_plan_round_trips_through_dict():
    assert plan_to_dict(None) is None
    assert plan_from_dict(None) is None
    plan = FaultPlan(
        specs=(FaultSpec(mode="nan", rate=0.05), FaultSpec(mode="duplicate", rate=0.1)),
        seed=42,
    )
    assert plan_from_dict(plan_to_dict(plan)) == plan


def test_mutable_knobs_is_sorted_and_nonempty():
    knobs = mutable_knobs()
    assert knobs == tuple(sorted(knobs))
    assert "num_kernels" in knobs
    assert "tier_fractions" in knobs
