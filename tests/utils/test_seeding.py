"""Tests for deterministic seed derivation."""

import numpy as np

from repro.utils.seeding import derive_seed, rng_for


def test_same_labels_same_seed():
    assert derive_seed("a", "b") == derive_seed("a", "b")


def test_different_labels_different_seed():
    assert derive_seed("lmc") != derive_seed("lmr")


def test_label_concatenation_is_unambiguous():
    assert derive_seed("ab", "c") != derive_seed("a", "bc")


def test_non_string_labels_accepted():
    assert derive_seed("kernel", 3) == derive_seed("kernel", "3")


def test_seed_fits_in_63_bits():
    assert 0 <= derive_seed("x") < 2**63


def test_rng_for_reproducible_stream():
    a = rng_for("stream").random(5)
    b = rng_for("stream").random(5)
    assert np.array_equal(a, b)


def test_rng_for_distinct_streams():
    a = rng_for("stream", 1).random(5)
    b = rng_for("stream", 2).random(5)
    assert not np.array_equal(a, b)
