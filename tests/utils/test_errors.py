"""Tests for the typed exception hierarchy."""

import pytest

from repro.utils.errors import (
    CheckpointError,
    EngineError,
    FaultInjectionError,
    FuzzError,
    PredictionError,
    ProfileError,
    QuarantinedTaskError,
    ReproError,
    SelectionError,
    SieveError,
    TaskCrashError,
    TaskTimeoutError,
)
from repro.utils.validation import require


@pytest.mark.parametrize(
    "exc_type",
    [
        ReproError,
        ProfileError,
        SelectionError,
        PredictionError,
        FaultInjectionError,
        EngineError,
        TaskTimeoutError,
        TaskCrashError,
        QuarantinedTaskError,
        FuzzError,
        CheckpointError,
    ],
)
def test_hierarchy_is_catchable_as_value_error(exc_type):
    # Backwards compatibility: all repro errors remain ValueErrors so
    # pre-existing callers that catch ValueError keep working.
    assert issubclass(exc_type, SieveError)
    assert issubclass(exc_type, ValueError)


def test_repro_error_is_sieve_error_alias():
    assert ReproError is SieveError


def test_engine_subtypes_catchable_as_engine_error():
    for exc_type in (TaskTimeoutError, TaskCrashError, QuarantinedTaskError):
        assert issubclass(exc_type, EngineError)
    assert issubclass(CheckpointError, FuzzError)


def test_context_renders_as_sorted_suffix():
    exc = SieveError("task failed", workload="fuzz/s-0001", attempt=2)
    assert exc.message == "task failed"
    assert exc.context == {"workload": "fuzz/s-0001", "attempt": 2}
    assert str(exc) == "task failed [attempt=2, workload='fuzz/s-0001']"


def test_context_drops_none_fields():
    exc = EngineError("timed out", deadline_s=30.0, error=None)
    assert exc.context == {"deadline_s": 30.0}
    assert str(exc) == "timed out [deadline_s=30.0]"


def test_no_context_renders_plain_message():
    exc = SieveError("plain")
    assert exc.context == {}
    assert str(exc) == "plain"


def test_profile_error_carries_location():
    exc = ProfileError("bad field", path="/tmp/p.csv", row=17)
    assert exc.path == "/tmp/p.csv"
    assert exc.row == 17
    assert str(exc) == "/tmp/p.csv:row 17: bad field"


def test_profile_error_without_location():
    exc = ProfileError("just a message")
    assert exc.path is None and exc.row is None
    assert str(exc) == "just a message"


def test_profile_error_path_only():
    exc = ProfileError("oops", path="p.csv")
    assert str(exc) == "p.csv: oops"


def test_require_default_raises_value_error():
    require(True, "fine")
    with pytest.raises(ValueError, match="boom"):
        require(False, "boom")


def test_require_custom_error_class():
    with pytest.raises(SelectionError, match="no strata"):
        require(False, "no strata", SelectionError)


def test_require_error_factory():
    with pytest.raises(ProfileError) as excinfo:
        require(
            False,
            "corrupt",
            lambda m: ProfileError(m, path="x.csv", row=3),
        )
    assert excinfo.value.row == 3
