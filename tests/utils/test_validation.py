"""Tests for the require() helper."""

import pytest

from repro.utils.validation import require


def test_require_passes_on_true():
    require(True, "never raised")


def test_require_raises_value_error_with_message():
    with pytest.raises(ValueError, match="broken invariant"):
        require(False, "broken invariant")
