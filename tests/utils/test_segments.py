"""Segments edge cases: empty input, one group, ties, singleton segments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.segments import Segments


def test_empty_key_yields_zero_segments():
    segments = Segments.group_by(np.empty(0, dtype=np.int64))
    assert len(segments) == 0
    assert len(segments.order) == 0
    assert len(segments.keys) == 0
    assert len(segments.ends) == 0
    assert len(segments.segment_of_position) == 0


def test_empty_segments_reduce_to_empty_arrays():
    segments = Segments.group_by(np.empty(0, dtype=np.int64))
    empty = np.empty(0, dtype=np.int64)
    assert len(segments.sums(empty)) == 0
    assert len(segments.mins(empty)) == 0
    assert len(segments.maxs(empty)) == 0
    assert len(segments.covs(empty)) == 0


def test_single_group_covers_all_rows_in_order():
    key = np.zeros(9, dtype=np.int64)
    segments = Segments.group_by(key)
    assert len(segments) == 1
    np.testing.assert_array_equal(segments.keys, [0])
    np.testing.assert_array_equal(segments.counts, [9])
    np.testing.assert_array_equal(segments.rows(0), np.arange(9))


def test_all_equal_sort_keys_keep_chronological_order():
    """The stable sort must not shuffle ties: with one shared key the
    gathered values are exactly the input order."""
    values = np.array([5, 3, 9, 1, 7], dtype=np.int64)
    segments = Segments.group_by(np.full(5, 42, dtype=np.int64))
    np.testing.assert_array_equal(segments.gather(values), values)
    assert int(segments.sums(segments.gather(values))[0]) == int(values.sum())


def test_single_row_segments_reduce_to_the_row_itself():
    key = np.array([3, 1, 2, 0], dtype=np.int64)
    values = np.array([30, 10, 20, 0], dtype=np.int64)
    segments = Segments.group_by(key)
    np.testing.assert_array_equal(segments.keys, [0, 1, 2, 3])
    np.testing.assert_array_equal(segments.counts, [1, 1, 1, 1])
    sorted_values = segments.gather(values)
    np.testing.assert_array_equal(segments.sums(sorted_values), [0, 10, 20, 30])
    np.testing.assert_array_equal(segments.mins(sorted_values), [0, 10, 20, 30])
    np.testing.assert_array_equal(segments.maxs(sorted_values), [0, 10, 20, 30])


def test_single_row_groups_have_zero_dispersion():
    key = np.array([0, 1, 1, 2], dtype=np.int64)
    values = np.array([7, 4, 8, 9], dtype=np.int64)
    segments = Segments.group_by(key)
    covs = segments.covs(segments.gather(values))
    assert covs[0] == 0.0  # singleton
    assert covs[2] == 0.0  # singleton
    assert covs[1] > 0.0


def test_all_zero_group_has_zero_cov():
    segments = Segments.group_by(np.zeros(4, dtype=np.int64))
    covs = segments.covs(np.zeros(4, dtype=np.float64))
    np.testing.assert_array_equal(covs, [0.0])


def test_absent_keys_do_not_appear():
    key = np.array([10, 10, 50], dtype=np.int64)
    segments = Segments.group_by(key)
    np.testing.assert_array_equal(segments.keys, [10, 50])
    np.testing.assert_array_equal(segments.counts, [2, 1])


def test_segment_of_position_labels_every_row():
    key = np.array([2, 0, 2, 1, 0], dtype=np.int64)
    segments = Segments.group_by(key)
    labels = segments.segment_of_position
    sorted_keys = np.asarray(key)[segments.order]
    np.testing.assert_array_equal(segments.keys[labels], sorted_keys)


def test_first_positions_picks_first_chronological_match():
    key = np.array([0, 0, 0, 1, 1], dtype=np.int64)
    segments = Segments.group_by(key)
    mask = np.array([False, True, True, True, False])
    picks = segments.first_positions(mask)
    np.testing.assert_array_equal(picks, [1, 3])


def test_first_positions_on_singleton_segments():
    segments = Segments.group_by(np.array([4, 2, 9], dtype=np.int64))
    picks = segments.first_positions(np.ones(3, dtype=bool))
    np.testing.assert_array_equal(picks, [0, 1, 2])


@pytest.mark.parametrize("n", [1, 2, 13])
def test_group_by_partitions_all_rows(n):
    rng = np.random.default_rng(n)
    key = rng.integers(0, 4, n)
    segments = Segments.group_by(key)
    assert int(segments.counts.sum()) == n
    seen = np.concatenate([segments.rows(i) for i in range(len(segments))])
    np.testing.assert_array_equal(np.sort(seen), np.arange(n))
