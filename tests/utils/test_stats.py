"""Tests for the statistics helpers (CoV, weighted means)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    coefficient_of_variation,
    weighted_arithmetic_mean,
    weighted_harmonic_mean,
)


class TestCoefficientOfVariation:
    def test_constant_values_have_zero_cov(self):
        assert coefficient_of_variation(np.array([7.0, 7.0, 7.0])) == 0.0

    def test_single_value_has_zero_cov(self):
        assert coefficient_of_variation(np.array([42.0])) == 0.0

    def test_empty_has_zero_cov(self):
        assert coefficient_of_variation(np.array([])) == 0.0

    def test_known_value(self):
        values = np.array([1.0, 3.0])  # mean 2, population std 1
        assert coefficient_of_variation(values) == pytest.approx(0.5)

    def test_zero_mean_with_dispersion_raises(self):
        with pytest.raises(ValueError):
            coefficient_of_variation(np.array([-1.0, 1.0]))

    def test_scale_invariance(self):
        values = np.array([2.0, 4.0, 9.0])
        assert coefficient_of_variation(values) == pytest.approx(
            coefficient_of_variation(values * 1000.0)
        )


class TestWeightedMeans:
    def test_harmonic_mean_matches_paper_formula(self):
        ipc = np.array([2.0, 4.0])
        weights = np.array([0.5, 0.5])
        # 1 / (0.5/2 + 0.5/4) = 1 / 0.375
        assert weighted_harmonic_mean(ipc, weights) == pytest.approx(1 / 0.375)

    def test_weights_are_normalized(self):
        ipc = np.array([2.0, 4.0])
        assert weighted_harmonic_mean(ipc, np.array([5.0, 5.0])) == pytest.approx(
            weighted_harmonic_mean(ipc, np.array([0.5, 0.5]))
        )

    def test_arithmetic_mean_known_value(self):
        assert weighted_arithmetic_mean(
            np.array([1.0, 3.0]), np.array([0.25, 0.75])
        ) == pytest.approx(2.5)

    def test_degenerate_single_element(self):
        assert weighted_harmonic_mean(np.array([3.0]), np.array([1.0])) == 3.0

    def test_rejects_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_harmonic_mean(np.array([1.0]), np.array([0.0]))

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            weighted_arithmetic_mean(np.array([1.0, 2.0]), np.array([1.0, -1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_harmonic_mean(np.array([1.0, 2.0]), np.array([1.0]))

    def test_rejects_nonpositive_values_in_harmonic(self):
        with pytest.raises(ValueError):
            weighted_harmonic_mean(np.array([1.0, 0.0]), np.array([1.0, 1.0]))


@given(
    values=st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=32),
    raw_weights=st.lists(
        st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=32
    ),
)
def test_harmonic_ipc_equals_reciprocal_arithmetic_cpi(values, raw_weights):
    """Section III-D duality: hmean(IPC) == 1 / amean(CPI) under the same
    weights. This is the identity the paper relies on when switching
    between IPC and CPI aggregation."""
    size = min(len(values), len(raw_weights))
    ipc = np.array(values[:size])
    weights = np.array(raw_weights[:size])
    harmonic = weighted_harmonic_mean(ipc, weights)
    arithmetic_cpi = weighted_arithmetic_mean(1.0 / ipc, weights)
    assert harmonic == pytest.approx(1.0 / arithmetic_cpi, rel=1e-9)


@given(
    values=st.lists(st.floats(min_value=1.0, max_value=1e9), min_size=2, max_size=64)
)
def test_cov_is_nonnegative_and_scale_invariant(values):
    array = np.array(values)
    cov = coefficient_of_variation(array)
    assert cov >= 0.0
    assert coefficient_of_variation(array * 3.0) == pytest.approx(cov, rel=1e-6)
