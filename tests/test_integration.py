"""Cross-module integration tests: the complete paper pipelines."""

import numpy as np
import pytest

from repro import (
    AMPERE_RTX3080,
    HardwareExecutor,
    NsightComputeProfiler,
    NVBitProfiler,
    PksPipeline,
    SievePipeline,
    generate,
    spec_for,
)
from repro.profiling.csv_io import read_profile_csv, write_profile_csv
from repro.trace.simtime import estimate_simulation_time
from repro.trace.simulator import SimulatorConfig, TraceSimulator
from repro.trace.tracer import SelectionTracer, TracerConfig
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def pipeline_world():
    """One end-to-end world shared by the integration tests."""
    run = generate(spec_for("cactus/spt"), max_invocations=2500)
    golden = HardwareExecutor(AMPERE_RTX3080).measure(run)
    sieve_table, sieve_cost = NVBitProfiler().profile(run)
    pks_table, pks_cost = NsightComputeProfiler().profile(run)
    return run, golden, sieve_table, pks_table, sieve_cost, pks_cost


def test_sieve_more_accurate_than_pks_on_challenging_workload(pipeline_world):
    """The paper's headline claim, end to end on a capped spt."""
    run, golden, sieve_table, pks_table, _, _ = pipeline_world
    sieve = SievePipeline()
    sieve_error = sieve.predict(sieve.select(sieve_table), golden).error_against(
        golden.total_cycles
    )
    pks = PksPipeline()
    pks_error = pks.predict(pks.select(pks_table, golden), golden).error_against(
        golden.total_cycles
    )
    assert sieve_error < 0.05
    assert pks_error > sieve_error


def test_profiling_cheaper_for_sieve(pipeline_world):
    _, _, _, _, sieve_cost, pks_cost = pipeline_world
    assert pks_cost.total_seconds / sieve_cost.total_seconds > 2


def test_sieve_pipeline_through_csv_files(pipeline_world, tmp_path):
    """Profiles written to CSV and read back drive identical selections —
    the paper's actual file-based workflow."""
    run, golden, sieve_table, _, _, _ = pipeline_world
    path = tmp_path / "profile.csv"
    write_profile_csv(sieve_table, path)
    reloaded = read_profile_csv(path)
    direct = SievePipeline().select(sieve_table)
    via_csv = SievePipeline().select(reloaded)
    # The reader renumbers kernels by first appearance, which permutes the
    # representative list; the selected (kernel, invocation, weight) set is
    # identical.
    def as_map(selection):
        return {
            (r.kernel_name, r.invocation_id): r.weight
            for r in selection.representatives
        }

    direct_map, csv_map = as_map(direct), as_map(via_csv)
    assert direct_map.keys() == csv_map.keys()
    assert np.allclose(
        [direct_map[key] for key in sorted(direct_map)],
        [csv_map[key] for key in sorted(csv_map)],
    )


def test_selected_invocations_flow_into_trace_simulation(pipeline_world):
    """Section V-G pipeline: selection -> traces -> cycle-level simulation."""
    run, golden, sieve_table, _, _, _ = pipeline_world
    selection = SievePipeline().select(sieve_table)
    tracer = SelectionTracer(TracerConfig(max_warps=4, max_warp_instructions=64))
    simulator = TraceSimulator(SimulatorConfig(num_sms=2))
    for rep in selection.representatives[:3]:
        trace = tracer.trace_invocation(run, rep.kernel_name, rep.invocation_id)
        result = simulator.simulate(trace)
        assert result.cycles > 0
        assert result.ipc > 0
    estimate = estimate_simulation_time(selection, golden)
    assert estimate.parallel_seconds < estimate.serial_seconds


def test_cross_architecture_selection_reuse(pipeline_world):
    """Sieve's selection is microarchitecture-independent: the same
    representatives predict both Ampere and Turing executions."""
    from repro import TURING_RTX2080TI

    run, golden, sieve_table, _, _, _ = pipeline_world
    selection = SievePipeline().select(sieve_table)
    turing = HardwareExecutor(TURING_RTX2080TI).measure(run)
    pipeline = SievePipeline()
    for measurement in (golden, turing):
        error = pipeline.predict(selection, measurement).error_against(
            measurement.total_cycles
        )
        assert error < 0.06


def test_tier1_only_workload_selects_one_rep_per_kernel():
    spec = make_spec(name="alltier1", tier_fractions=(1.0, 0.0, 0.0))
    run = generate(spec)
    table, _ = NVBitProfiler().profile(run)
    selection = SievePipeline().select(table)
    assert selection.num_representatives == spec.num_kernels
    golden = HardwareExecutor(AMPERE_RTX3080).measure(run)
    error = SievePipeline().predict(selection, golden).error_against(
        golden.total_cycles
    )
    assert error < 0.02


def test_single_kernel_single_invocation_workload():
    """Degenerate extreme: one kernel invoked once."""
    spec = make_spec(
        name="single", num_kernels=1, num_invocations=1,
        tier_fractions=(1.0, 0.0, 0.0), alias_groups=1,
    )
    run = generate(spec)
    table, _ = NVBitProfiler().profile(run)
    selection = SievePipeline().select(table)
    assert selection.num_representatives == 1
    golden = HardwareExecutor(AMPERE_RTX3080).measure(run)
    prediction = SievePipeline().predict(selection, golden)
    assert prediction.error_against(golden.total_cycles) < 0.02
