"""Cache-correctness smoke check (run in CI).

Runs a reduced-scale Figure 3 experiment twice against one cache
directory and asserts the contract the engine promises:

* the warm (cache-hit) run is at least MIN_SPEEDUP faster than the cold
  run;
* both runs produce byte-identical pickled ``MethodResult``\\ s;
* the warm run served every task from cache (no recomputation).

Usage::

    PYTHONPATH=src python scripts/cache_smoke.py [--jobs N] [--cap N]

Exits non-zero (with a diagnostic) on any violation.
"""

from __future__ import annotations

import argparse
import pickle
import sys
import tempfile
import time
from pathlib import Path

from repro.evaluation.engine import EngineConfig, EvaluationEngine
from repro.evaluation.experiments import compare_methods

MIN_SPEEDUP = 5.0


def run_once(cache: Path, jobs: int, cap: int):
    engine = EvaluationEngine(
        EngineConfig(jobs=jobs, use_cache=True, cache_dir=cache)
    )
    start = time.perf_counter()
    rows = compare_methods(max_invocations=cap, engine=engine)
    elapsed = time.perf_counter() - start
    return rows, elapsed, engine.cache_stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cap", type=int, default=2000)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="sieve-cache-smoke-") as tmp:
        cache = Path(tmp)
        cold_rows, cold_time, cold_stats = run_once(cache, args.jobs, args.cap)
        warm_rows, warm_time, warm_stats = run_once(cache, args.jobs, args.cap)

    speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    print(f"cold: {cold_time:.3f}s ({cold_stats.summary()})")
    print(f"warm: {warm_time:.3f}s ({warm_stats.summary()})")
    print(f"warm-cache speedup: {speedup:.1f}x (required >= {MIN_SPEEDUP}x)")

    failures = []
    if warm_stats.hits != len(cold_rows) or warm_stats.misses != 0:
        failures.append(
            f"warm run recomputed work: {warm_stats.summary()} over "
            f"{len(cold_rows)} tasks"
        )
    for cold, warm in zip(cold_rows, warm_rows):
        for method in ("sieve", "pks"):
            if pickle.dumps(getattr(cold, method)) != pickle.dumps(
                getattr(warm, method)
            ):
                failures.append(
                    f"{cold.workload} {method}: warm result is not "
                    "byte-identical to cold result"
                )
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"warm run only {speedup:.1f}x faster (need >= {MIN_SPEEDUP}x)"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("cache smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
