"""Scale smoke: cap=100k vectorization gate + shared-memory round trip.

Builds one large synthetic workload (default: 2048 kernels x 100 000
invocations, tier-1/2 heavy so per-kernel bookkeeping rather than the
KDE inner loop dominates), then:

* times the vectorized stratify -> golden-align -> predict path against
  the retained scalar references in :mod:`repro.core.reference` (best of
  ``--repeats`` runs each) and **fails** unless the vectorized path is at
  least ``--min-speedup`` x faster (default 5x, the PR's acceptance
  criterion);
* cross-checks the two implementations produce identical strata, golden
  cycle alignments and predictions on that table, so the speedup number
  can never drift away from the correctness it advertises;
* pushes the same table through the evaluation engine's shared-memory
  plane (publish -> ``table_ref`` task -> evaluate) and verifies the
  result matches the in-process evaluation plus the expected
  ``engine.shm.*`` counters;
* when ``SIEVE_BENCH_MANIFEST_DIR`` is set, writes ``BENCH_scale.json``
  (per-stage wall times + deterministic aggregates) for the CI
  ``scale-bench`` job to diff against ``benchmarks/baselines/`` via
  ``scripts/check_bench_regression.py --figures scale``.

Timing-derived numbers (the speedups) are reported in the manifest's
``config`` block, which the regression differ ignores; the gated
surfaces are the *stage wall times* (vectorized stages regressing >25%
fail CI) and the deterministic aggregates (strata/representative counts,
prediction error, shm counters).

Usage::

    PYTHONPATH=src python scripts/scale_smoke.py
    PYTHONPATH=src python scripts/scale_smoke.py --kernels 4096 --repeats 5
    SIEVE_BENCH_MANIFEST_DIR=/tmp/m PYTHONPATH=src python scripts/scale_smoke.py
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import SieveConfig
from repro.core.reference import (
    cycles_in_table_order_scalar,
    sieve_predict_scalar,
    stratify_table_scalar,
)
from repro.core.pipeline import SievePipeline
from repro.core.stratify import stratify_table
from repro.evaluation.context import build_context
from repro.evaluation.engine import EngineConfig, EvaluationEngine, EvaluationTask
from repro.evaluation.imputation import cycles_in_table_order
from repro.observability import manifest as obs_manifest
from repro.observability import metrics, span
from repro.observability import spans as obs_spans
from repro.workloads.spec import WorkloadSpec

DEFAULT_KERNELS = 2048
DEFAULT_CAP = 100_000
DEFAULT_REPEATS = 3
DEFAULT_MIN_SPEEDUP = 5.0

#: The timed path, in pipeline order. Stage spans are named
#: ``scale.<stage>.<impl>`` so the regression gate can watch each one.
PATH_STAGES = ("stratify", "align", "predict")


def scale_spec(kernels: int = DEFAULT_KERNELS, cap: int = DEFAULT_CAP) -> WorkloadSpec:
    """The synthetic scale fixture: many kernels, no tier-3 mass.

    Tier fractions (0.5, 0.5, 0.0) keep the KDE inner loop (identical in
    both implementations, and the dominant cost on mixed workloads) out
    of the measurement, so the timed difference is exactly the per-kernel
    Python bookkeeping the vectorization pass replaced.
    """
    return WorkloadSpec(
        name=f"scale-{kernels}x{cap}",
        suite="synthetic",
        num_kernels=kernels,
        num_invocations=cap,
        tier_fractions=(0.5, 0.5, 0.0),
    )


@dataclass
class ScaleReport:
    """Everything one scale run measured, for printing and the manifest."""

    kernels: int
    cap: int
    repeats: int
    rows: int
    #: best-of-``repeats`` wall seconds per stage per implementation.
    vectorized: dict[str, float] = field(default_factory=dict)
    scalar: dict[str, float] = field(default_factory=dict)
    num_strata: int = 0
    num_representatives: int = 0
    predicted_cycles: float = 0.0
    sieve_error: float = 0.0
    shm_counters: dict[str, int] = field(default_factory=dict)

    def speedup(self, stage: str) -> float:
        return self.scalar[stage] / max(self.vectorized[stage], 1e-12)

    @property
    def path_speedup(self) -> float:
        total_scalar = sum(self.scalar[s] for s in PATH_STAGES)
        total_vec = sum(self.vectorized[s] for s in PATH_STAGES)
        return total_scalar / max(total_vec, 1e-12)


def _best_of(repeats: int, stage: str, impl: str, fn) -> tuple[float, object]:
    """Best wall time over ``repeats`` runs; keeps the last return value.

    Each run gets its own span so the manifest's stage table shows the
    summed wall time, while the report (and the printed speedups) use the
    minimum — the standard way to strip scheduler noise from a ratio.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        with span(f"scale.{stage}.{impl}"):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
    return best, result


def _check_strata_equal(vec, ref) -> None:
    assert len(vec) == len(ref), f"strata count {len(vec)} != {len(ref)}"
    for a, b in zip(vec, ref):
        assert a.kernel_id == b.kernel_id and a.tier == b.tier
        assert np.array_equal(np.asarray(a.rows), np.asarray(b.rows))
        assert a.insn_total == b.insn_total
        assert np.isclose(a.insn_cov, b.insn_cov, rtol=1e-9, atol=1e-12)


def run_scale(
    kernels: int = DEFAULT_KERNELS,
    cap: int = DEFAULT_CAP,
    repeats: int = DEFAULT_REPEATS,
) -> ScaleReport:
    """Build the fixture, time both implementations, verify equivalence."""
    spec = scale_spec(kernels, cap)
    config = SieveConfig()
    with span("scale.build", workload=spec.label):
        context = build_context(spec.label, spec=spec)
    table = context.sieve_table
    golden = context.golden
    report = ScaleReport(
        kernels=kernels, cap=cap, repeats=repeats, rows=len(table)
    )

    # --- stratify ----------------------------------------------------
    t_vec, strata = _best_of(
        repeats, "stratify", "vectorized", lambda: stratify_table(table, config)
    )
    t_ref, strata_ref = _best_of(
        repeats, "stratify", "scalar", lambda: stratify_table_scalar(table, config)
    )
    report.vectorized["stratify"], report.scalar["stratify"] = t_vec, t_ref
    _check_strata_equal(strata, strata_ref)
    report.num_strata = len(strata)

    # --- golden-cycle alignment --------------------------------------
    t_vec, cycles = _best_of(
        repeats, "align", "vectorized", lambda: cycles_in_table_order(table, golden)
    )
    t_ref, cycles_ref = _best_of(
        repeats, "align", "scalar",
        lambda: cycles_in_table_order_scalar(table, golden),
    )
    report.vectorized["align"], report.scalar["align"] = t_vec, t_ref
    assert np.array_equal(cycles, cycles_ref), "golden alignment diverged"

    # --- predict -----------------------------------------------------
    pipe = SievePipeline(config)
    with span("scale.select", workload=spec.label):
        selection = pipe.select(table)
    report.num_representatives = len(selection.representatives)
    t_vec, prediction = _best_of(
        repeats, "predict", "vectorized", lambda: pipe.predict(selection, golden)
    )
    t_ref, prediction_ref = _best_of(
        repeats, "predict", "scalar",
        lambda: sieve_predict_scalar(selection, golden),
    )
    report.vectorized["predict"], report.scalar["predict"] = t_vec, t_ref
    assert np.isclose(
        prediction.predicted_cycles, prediction_ref.predicted_cycles, rtol=1e-12
    ), "prediction diverged"
    report.predicted_cycles = float(prediction.predicted_cycles)
    return report


def run_shm_round_trip(report: ScaleReport, jobs: int = 1) -> None:
    """Evaluate the scale table through the shared-memory engine path."""
    spec = scale_spec(report.kernels, report.cap)
    context = build_context(spec.label, spec=spec)
    registry = metrics.get_registry()
    before = dict(registry.counters)
    with span("scale.shm", workload=spec.label):
        with EvaluationEngine(EngineConfig(jobs=jobs, use_cache=False)) as engine:
            ref = engine.publish_table(context.pks_table, context.golden)
            dup = engine.publish_table(context.pks_table, context.golden)
            assert dup.segment == ref.segment, "identical bundle must dedup"
            task = EvaluationTask(
                label=spec.label, methods=("sieve",), table_ref=ref
            )
            [result] = engine.run([task])
            shm_result = result.results["sieve"]
        assert engine.closed
    delta = {
        key.split(".")[-1].split("{")[0]: int(
            registry.counters.get(key, 0) - before.get(key, 0)
        )
        for key in (
            "engine.shm.published",
            "engine.shm.publish_dedup",
            "engine.shm.attach",
            "engine.shm.attach_miss",
            "engine.shm.unlinked",
        )
    }
    assert delta["published"] == 1 and delta["publish_dedup"] == 1
    assert delta["attach"] >= 1 and delta["attach_miss"] == 0
    assert delta["unlinked"] == 1, "engine close must unlink the segment"
    report.shm_counters = delta
    report.sieve_error = float(shm_result.error)
    # The shared-memory view must reproduce the in-process numbers bit
    # for bit: same table bytes in, same prediction out.
    direct = SievePipeline().select(context.sieve_table)
    direct_prediction = SievePipeline().predict(direct, context.golden)
    assert np.isclose(
        shm_result.predicted_cycles, direct_prediction.predicted_cycles, rtol=1e-12
    ), "shared-memory evaluation diverged from direct evaluation"


def write_manifest(report: ScaleReport, mark: tuple[int, int, float, float]):
    """Write ``BENCH_scale.json`` when ``SIEVE_BENCH_MANIFEST_DIR`` is set."""
    directory = os.environ.get("SIEVE_BENCH_MANIFEST_DIR")
    if not directory:
        return None
    since, events_since, wall_start, cpu_start = mark
    # Measured speedups are informational, and they ride as an event
    # rather than config keys: the perfstore fingerprints ``config`` to
    # group runs of the same experiment *shape*, so run-varying
    # measurements in it would split every repeat into its own group.
    # The >=5x criterion is enforced by this script's own assertion.
    obs_manifest.record_event(
        "scale.speedups",
        path_speedup=round(report.path_speedup, 2),
        **{
            f"{stage}_speedup": round(report.speedup(stage), 2)
            for stage in PATH_STAGES
        },
    )
    manifest = obs_manifest.collect_manifest(
        "bench scale",
        config={
            "kernels": report.kernels,
            "cap": report.cap,
            "repeats": report.repeats,
        },
        workloads=[
            {
                "workload": scale_spec(report.kernels, report.cap).label,
                "sieve_error": report.sieve_error,
            }
        ],
        aggregates={
            "rows": report.rows,
            "num_strata": report.num_strata,
            "num_representatives": report.num_representatives,
            "shm_published": report.shm_counters.get("published", 0),
            "shm_attach": report.shm_counters.get("attach", 0),
            "shm_attach_miss": report.shm_counters.get("attach_miss", 0),
            "shm_unlinked": report.shm_counters.get("unlinked", 0),
        },
        since=since,
        events_since=events_since,
        total_wall_s=time.perf_counter() - wall_start,
        total_cpu_s=time.process_time() - cpu_start,
    )
    path = manifest.save(Path(directory) / "BENCH_scale.json")
    from repro.perfstore.store import maybe_record

    maybe_record(manifest, figure="scale")
    window = obs_spans.records()[since:]
    if window:
        from repro.observability.export import write_chrome_trace

        write_chrome_trace(Path(directory) / "TRACE_scale.json", window)
    return path


def print_report(report: ScaleReport) -> None:
    print(f"scale smoke: {report.kernels} kernels x {report.cap} invocations "
          f"({report.rows} profiled rows), best of {report.repeats}")
    header = f"{'stage':<10} {'scalar':>10} {'vectorized':>12} {'speedup':>9}"
    print(header)
    print("-" * len(header))
    for stage in PATH_STAGES:
        print(f"{stage:<10} {report.scalar[stage]:>9.4f}s "
              f"{report.vectorized[stage]:>11.4f}s {report.speedup(stage):>8.2f}x")
    total_scalar = sum(report.scalar[s] for s in PATH_STAGES)
    total_vec = sum(report.vectorized[s] for s in PATH_STAGES)
    print(f"{'path':<10} {total_scalar:>9.4f}s {total_vec:>11.4f}s "
          f"{report.path_speedup:>8.2f}x")
    print(f"strata={report.num_strata} representatives={report.num_representatives} "
          f"sieve_error={report.sieve_error:.4%}")
    if report.shm_counters:
        print("shm counters: " + ", ".join(
            f"{k}={v}" for k, v in sorted(report.shm_counters.items())))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernels", type=int, default=DEFAULT_KERNELS)
    parser.add_argument("--cap", type=int, default=DEFAULT_CAP)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="timing repeats per stage (best-of)")
    parser.add_argument("--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
                        help="fail below this vectorized-path speedup")
    parser.add_argument("--jobs", type=int, default=1,
                        help="engine workers for the shm round trip")
    parser.add_argument("--skip-shm", action="store_true",
                        help="skip the shared-memory engine round trip")
    args = parser.parse_args(argv)

    mark = (obs_spans.mark(), obs_manifest.events_mark(),
            time.perf_counter(), time.process_time())
    report = run_scale(args.kernels, args.cap, args.repeats)
    if not args.skip_shm:
        run_shm_round_trip(report, jobs=args.jobs)
    print_report(report)
    path = write_manifest(report, mark)
    if path:
        print(f"manifest: {path}")

    if report.path_speedup < args.min_speedup:
        print(f"FAIL: path speedup {report.path_speedup:.2f}x is below the "
              f"required {args.min_speedup:.1f}x", file=sys.stderr)
        return 1
    print(f"OK: path speedup {report.path_speedup:.2f}x "
          f">= {args.min_speedup:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
