#!/usr/bin/env python
"""CI contract check: every registered sampling method actually works.

Imports the registry, instantiates every registered method on one tiny
synthetic workload, and asserts the select/predict round-trip invariants
the evaluation layer depends on:

* ``select`` returns a :class:`~repro.core.types.SampleSelection` with at
  least one representative, weights summing to ~1, and rows that index
  the method's profile table;
* ``predict`` on the context's golden measurement returns finite,
  positive predicted cycles;
* ``evaluate_method`` (the generic engine path) agrees exactly with the
  raw select/predict round-trip;
* the method's config schema round-trips through
  ``resolve_config(None)`` / ``resolve_config(default)``.

A partially migrated method — registered but with a broken adapter —
fails here long before it corrupts a figure. Exits non-zero on the first
violation.

Usage::

    PYTHONPATH=src python scripts/check_methods_contract.py [--cap N]
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.core.types import SampleSelection
from repro.evaluation.context import build_context
from repro.evaluation.runner import evaluate_method
from repro.methods import get_method, list_methods, method_entries

#: Small but non-trivial: enough invocations for PKS to cluster and for
#: the two-level profiler to have a detailed prefix + remainder.
DEFAULT_CAP = 600
WORKLOAD = "cactus/gru"


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_method(name: str, context) -> None:
    method = get_method(name)
    config = method.resolve_config(None)
    if method.config_schema is not None:
        resolved = method.resolve_config(config)
        if resolved is not config:
            fail(f"{name}: resolve_config(default) did not round-trip")

    selection = method.select(context, config)
    if not isinstance(selection, SampleSelection):
        fail(f"{name}: select returned {type(selection).__name__}")
    if selection.num_representatives < 1:
        fail(f"{name}: select produced no representatives")
    table_len = len(method.profile_table(context))
    for rep in selection.representatives:
        if not 0 <= rep.row < table_len:
            fail(f"{name}: representative row {rep.row} outside profile table")
    weight = sum(rep.weight for rep in selection.representatives)
    if not math.isclose(weight, 1.0, rel_tol=1e-6):
        fail(f"{name}: representative weights sum to {weight}, not 1")

    prediction = method.predict(selection, context.golden, config)
    if not (math.isfinite(prediction.predicted_cycles) and prediction.predicted_cycles > 0):
        fail(f"{name}: predicted cycles {prediction.predicted_cycles}")

    result = evaluate_method(name, context, config)
    if result.predicted_cycles != prediction.predicted_cycles:
        fail(
            f"{name}: evaluate_method predicted {result.predicted_cycles}, "
            f"raw round-trip predicted {prediction.predicted_cycles}"
        )
    if result.num_representatives != selection.num_representatives:
        fail(f"{name}: evaluate_method representative count drifted")
    print(
        f"ok   {name:14s} reps={result.num_representatives:4d} "
        f"error={result.error_percent:7.2f}% speedup={result.speedup:8.1f}x"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cap", type=int, default=DEFAULT_CAP)
    args = parser.parse_args()

    names = list_methods()
    if not names:
        fail("registry is empty")
    entries = method_entries()
    if tuple(m.name for m in entries) != names:
        fail("method_entries() and list_methods() disagree")
    expected = {"sieve", "pks", "pks-two-level", "periodic", "random"}
    missing = expected - set(names)
    if missing:
        fail(f"built-in methods missing from registry: {sorted(missing)}")

    context = build_context(WORKLOAD, args.cap)
    print(f"contract check on {WORKLOAD} (cap={args.cap}): {', '.join(names)}")
    for name in names:
        check_method(name, context)
    print(f"all {len(names)} registered methods honor the contract")
    return 0


if __name__ == "__main__":
    sys.exit(main())
