"""Diagnostic: signed PKS error and dispersion versus k for workloads."""

import sys

import numpy as np

from repro.baselines import PCA
from repro.baselines.kmeans import BisectingKMeans
from repro.baselines.pks import cycles_in_table_order
from repro.evaluation.context import build_context

for label in sys.argv[1:]:
    ctx = build_context(label)
    table = ctx.pks_table
    proj = PCA(0.9).fit(table.metrics).transform(table.metrics)
    cyc = cycles_in_table_order(table, ctx.golden)
    total = cyc.sum()
    errs = []
    clusterings = BisectingKMeans(20, seed_label=f"pks/{label}").fit_all(proj)
    for k in sorted(clusterings):
        if k < 2:
            continue
        km = clusterings[k]
        pred = sum(
            len(rows) * cyc[rows[0]]
            for rows in (np.flatnonzero(km.labels == c) for c in range(km.k))
            if len(rows)
        )
        errs.append((pred - total) / total * 100)
    print(
        "%-22s d=%d minabs=%5.1f%%: %s"
        % (label, proj.shape[1], min(abs(e) for e in errs),
           " ".join("%+.0f" % e for e in errs))
    )
