"""Time-boxed smoke test for the sampling service (CI ``service-smoke``).

Boots a private server on an ephemeral port, replays a seeded loadgen
burst at 32 concurrent clients, and asserts the service-level objectives
the acceptance bar names:

* **zero 5xx** responses across the burst;
* **p99 latency** under a deliberately generous bound (this is a shared
  CI box, not a latency lab — the bound catches hangs and pathological
  serialization, not millisecond drift);
* ``GET /v1/metrics`` parses as valid Prometheus exposition text
  (:func:`repro.observability.export.parse_prometheus` is the strict
  validator);
* the resulting ``BENCH_service.json`` manifest is written for the
  ``check_bench_regression.py --figures service`` gate and uploaded as a
  CI artifact.

A sequential warm-up pass touches every unique (workload, method, cap)
task first, so the measured burst exercises the dispatcher and cache
under concurrency rather than timing first-time evaluation cost.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py --out /tmp/manifests
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import tempfile
from pathlib import Path

from repro.observability.export import parse_prometheus
from repro.service import loadgen
from repro.service.server import ServiceConfig, start_in_thread

#: Fixed smoke parameters: the committed BENCH_service.json baseline was
#: generated with exactly these, so CI's manifest diffs like-for-like.
SEED = 2023
PATTERN = "poisson:200"
REQUESTS = 96
CLIENTS = 32
CAP = 400
WORKLOADS = ("rodinia/nw", "rodinia/lud", "rodinia/srad", "parboil/histo")
METHODS = ("sieve", "pks", "periodic", "random")


def build_schedule() -> tuple[loadgen.ScheduledRequest, ...]:
    mix = loadgen.RequestMix(
        workloads=WORKLOADS, methods=METHODS, cap=CAP, predict_fraction=0.5
    )
    return loadgen.generate_requests(
        loadgen.parse_pattern(PATTERN), mix, REQUESTS, seed=SEED
    )


def warm_up(host: str, port: int, schedule) -> int:
    """Evaluate every unique task once, serially; returns the count."""
    unique = {}
    for request in schedule:
        key = (request.payload["workload"], request.payload["method"])
        unique.setdefault(key, request)
    connection = http.client.HTTPConnection(host, port, timeout=300)
    try:
        for request in unique.values():
            body = json.dumps(request.payload).encode()
            connection.request(
                "POST",
                loadgen.protocol.PREDICT_ROUTE,
                body=body,
                headers={"Content-Length": str(len(body))},
            )
            response = connection.getresponse()
            response.read()
            if response.status != 200:
                raise SystemExit(
                    f"warm-up request failed with HTTP {response.status} "
                    f"for {request.payload}"
                )
    finally:
        connection.close()
    return len(unique)


def check_metrics(host: str, port: int) -> int:
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request("GET", loadgen.protocol.METRICS_ROUTE)
        response = connection.getresponse()
        text = response.read().decode("utf-8")
    finally:
        connection.close()
    if response.status != 200:
        raise SystemExit(f"/v1/metrics returned HTTP {response.status}")
    families = parse_prometheus(text)  # raises ValueError on malformation
    for expected in ("service_requests_total", "service_latency_s"):
        if expected not in families:
            raise SystemExit(f"/v1/metrics is missing the {expected} family")
    return len(families)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, required=True,
        help="directory to write BENCH_service.json into",
    )
    parser.add_argument(
        "--p99-bound-s", type=float, default=5.0,
        help="generous p99 latency ceiling for the warm burst (default 5s)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="engine process-pool width inside each batch (default 2)",
    )
    args = parser.parse_args(argv)

    schedule = build_schedule()
    with tempfile.TemporaryDirectory(prefix="service-smoke-cache-") as cache:
        handle = start_in_thread(
            ServiceConfig(cache_dir=cache, jobs=args.jobs, deadline_s=300.0)
        )
        try:
            warmed = warm_up(handle.host, handle.port, schedule)
            print(f"warm-up: {warmed} unique tasks evaluated")
            report = loadgen.run_loadgen(
                handle.host, handle.port, schedule, clients=CLIENTS
            )
            families = check_metrics(handle.host, handle.port)
        finally:
            handle.stop()

    summary = report.summary()
    for key, value in summary.items():
        print(f"{key}: {value}")
    print(f"/v1/metrics: {families} families, exposition valid")

    args.out.mkdir(parents=True, exist_ok=True)
    manifest = report.to_manifest()
    path = manifest.save(args.out / "BENCH_service.json")
    print(f"manifest: {path}")
    from repro.perfstore.store import maybe_record

    maybe_record(manifest, figure="service")

    failures = []
    if summary["http_5xx"] or summary["other"]:
        failures.append(
            f"{summary['http_5xx']} 5xx / {summary['other']} transport "
            "failures (must be 0)"
        )
    if summary["p99_s"] > args.p99_bound_s:
        failures.append(
            f"p99 {summary['p99_s']:.3f}s exceeds the {args.p99_bound_s}s bound"
        )
    if len(report.records) != REQUESTS:
        failures.append(
            f"only {len(report.records)}/{REQUESTS} requests completed"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: {REQUESTS} requests, {CLIENTS} clients, zero 5xx")
    return 0


if __name__ == "__main__":
    sys.exit(main())
