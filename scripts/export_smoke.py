"""Telemetry-export smoke check (run in CI).

Drives the three export surfaces end-to-end on one reduced-scale
workload and asserts the invariants the exporters promise:

* the Chrome trace parses as JSON, every duration event sits inside its
  parent track's time range, and the span count matches the window;
* the canonical JSONL export is byte-identical across two identical
  runs when compared structurally (timings stripped);
* the Prometheus text covers every counter/gauge/histogram in the
  registry snapshot;
* per-kernel error attributions sum to each method's signed error.

Usage::

    PYTHONPATH=src python scripts/export_smoke.py [--cap N] [--workload W]

Exits non-zero (with a diagnostic) on any violation.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.evaluation.context import build_context
from repro.evaluation.runner import evaluate_method
from repro.observability import metrics as obs_metrics
from repro.observability import spans as obs_spans
from repro.observability.export import (
    canonical_events,
    chrome_trace,
    export_jsonl,
    prometheus_text,
)


def run_once(context):
    """One sieve+pks evaluation; returns (results, evaluate-span window).

    The context is built by the caller: its generation spans are memoized
    away on repeat builds, so only the evaluate window is comparable
    across runs.
    """
    mark = obs_spans.mark()
    results = [evaluate_method(m, context) for m in ("sieve", "pks")]
    return results, obs_spans.records()[mark:]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cap", type=int, default=800)
    parser.add_argument("--workload", default="cactus/gru")
    args = parser.parse_args(argv)

    failures: list[str] = []

    context = build_context(args.workload, max_invocations=args.cap)
    results, window = run_once(context)

    trace = chrome_trace(window)
    trace = json.loads(json.dumps(trace))  # must survive a JSON round-trip
    durations = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    if len(durations) != len(window):
        failures.append(
            f"chrome trace has {len(durations)} duration events for "
            f"{len(window)} spans"
        )
    for event in durations:
        if event["dur"] < 0 or event["ts"] < 0:
            failures.append(f"negative ts/dur in chrome event {event['name']}")
            break

    snapshot = obs_metrics.get_registry().snapshot()
    text = prometheus_text(snapshot)
    for kind in ("counters", "gauges"):
        for key in snapshot.get(kind, {}):
            base = key.split("{", 1)[0].replace(".", "_")
            if base not in text:
                failures.append(f"prometheus text is missing {kind[:-1]} {key!r}")

    first = export_jsonl(window, structural=True)
    _, window2 = run_once(context)
    second = export_jsonl(window2, structural=True)
    if first != second:
        failures.append("structural JSONL export differs between identical runs")

    for result in results:
        attribution = result.attribution
        if attribution is None:
            failures.append(f"{result.method}: no attribution attached")
            continue
        total = sum(k.contribution for k in attribution.per_kernel)
        if not math.isclose(total, attribution.signed_error, rel_tol=1e-9, abs_tol=1e-12):
            failures.append(
                f"{result.method}: per-kernel contributions sum to {total}, "
                f"signed error is {attribution.signed_error}"
            )

    events = canonical_events(window, structural=True)
    print(
        f"export smoke: {len(window)} spans, {len(events)} canonical events, "
        f"{len(durations)} chrome durations, {len(results)} attributions"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("export smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
