"""Calibration sweep: paper-shape check over the challenging workloads.

Not part of the installed package — a development aid that prints the
Figure 2/3/4/6 quantities for every Cactus/MLPerf workload so the catalog
knobs can be tuned against the paper's reported values.
"""

import sys
import time

from repro.evaluation.context import build_context
from repro.evaluation.metrics import harmonic_mean
from repro.evaluation.runner import evaluate_pks, evaluate_sieve, sieve_tier_fractions
from repro.workloads.catalog import CHALLENGING_SUITES, specs_for_suites

CAP = None if len(sys.argv) < 2 else int(sys.argv[1])

sieve_errs, pks_errs, sieve_spd, pks_spd = [], [], [], []
print(f"{'workload':16s} {'t1/t2/t3@0.4':>15s} "
      f"{'sieve_err':>9s} {'pks_err':>8s} {'s_cov':>6s} {'p_cov':>6s} "
      f"{'s_spd':>8s} {'p_spd':>8s} {'reps':>5s} {'k':>3s} {'sec':>5s}")
for spec in specs_for_suites(CHALLENGING_SUITES):
    t0 = time.time()
    ctx = build_context(spec.label, max_invocations=CAP)
    tiers = sieve_tier_fractions(ctx, theta=0.4)
    sieve = evaluate_sieve(ctx)
    pks = evaluate_pks(ctx)
    sieve_errs.append(sieve.error)
    pks_errs.append(pks.error)
    if spec.name != "gst":
        sieve_spd.append(sieve.speedup)
        pks_spd.append(pks.speedup)
    print(f"{spec.label:16s} {tiers[0]*100:4.0f}/{tiers[1]*100:3.0f}/{tiers[2]*100:3.0f}%    "
          f"{sieve.error_percent:8.2f}% {pks.error_percent:7.2f}% "
          f"{sieve.cycle_cov:6.2f} {pks.cycle_cov:6.2f} "
          f"{sieve.speedup:8.0f} {pks.speedup:8.0f} "
          f"{sieve.num_representatives:5d} {getattr(pks.selection, 'chosen_k', 0):3d} "
          f"{time.time()-t0:5.1f}")

print(f"\nSieve: avg err {sum(sieve_errs)/len(sieve_errs)*100:.2f}% "
      f"max {max(sieve_errs)*100:.2f}%  hmean speedup {harmonic_mean(sieve_spd):.0f}x")
print(f"PKS:   avg err {sum(pks_errs)/len(pks_errs)*100:.2f}% "
      f"max {max(pks_errs)*100:.2f}%  hmean speedup {harmonic_mean(pks_spd):.0f}x")
print("paper: Sieve 1.2% avg / 3.2% max, 922x; PKS 16.5% avg / 60.4% max, 1272x")
