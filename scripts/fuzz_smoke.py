"""Time-boxed fuzz-campaign smoke check (run in CI).

Drives the full ``repro.fuzz`` path end to end at a small fixed budget
and asserts the contracts the fuzzer promises:

* a campaign is byte-deterministic: two runs of the same config produce
  identical ``findings.json`` files (the second runs cache-warm);
* a campaign interrupted after ``--stop-after`` candidates resumes to
  the same bytes as an uninterrupted run;
* injected task-surface chaos (crashes + raised task errors) never
  aborts the campaign and never changes a surviving candidate's score;
* the committed adversarial suite still reproduces its pinned errors.

The campaign output (findings + checkpoint + quarantine list) is left
under ``--out`` so CI can upload it as an artifact.

Usage::

    PYTHONPATH=src python scripts/fuzz_smoke.py [--budget N] [--cap N] \\
        [--out DIR]

Exits non-zero (with a diagnostic) on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.evaluation.engine import EngineConfig, EvaluationEngine
from repro.fuzz import FuzzConfig, run_campaign
from repro.workloads.adversarial import verify_suite

SEED = "ci-smoke"
CHAOS = "crash:0.25,task_error:0.25"


def engine_for(cache: Path, out: Path) -> EvaluationEngine:
    return EvaluationEngine(
        EngineConfig(
            jobs=1,
            use_cache=True,
            cache_dir=cache,
            quarantine_path=out / "quarantine.json",
        )
    )


def config_for(out: Path, budget: int, cap: int, **overrides) -> FuzzConfig:
    fields = dict(
        seed=SEED,
        budget=budget,
        methods=("sieve", "pks"),
        max_invocations=cap,
        threshold=0.05,
        top_k=2,
        shrink_steps=6,
        deadline_s=120.0,
        max_attempts=2,
        out_dir=out,
    )
    fields.update(overrides)
    return FuzzConfig(**fields)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=6)
    parser.add_argument("--cap", type=int, default=600)
    parser.add_argument("--out", type=Path, default=Path("fuzz-smoke"))
    args = parser.parse_args(argv)

    out = args.out
    out.mkdir(parents=True, exist_ok=True)
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="sieve-fuzz-smoke-") as tmp:
        cache = Path(tmp) / "cache"

        # --- determinism: cold vs cache-warm rerun ----------------------
        first = run_campaign(
            config_for(out / "first", args.budget, args.cap),
            engine=engine_for(cache, out / "first"),
        )
        second = run_campaign(
            config_for(out / "second", args.budget, args.cap),
            engine=engine_for(cache, out / "second"),
        )
        first_bytes = first.findings_path.read_bytes()
        print(
            f"campaign: scored {first.scored}, failed {first.failed}, "
            f"findings {len(first.findings)}"
        )
        if first_bytes != second.findings_path.read_bytes():
            failures.append("cache-warm rerun produced different findings.json")

        # --- interruption + resume --------------------------------------
        resumed_out = out / "resumed"
        paused = run_campaign(
            config_for(resumed_out, args.budget, args.cap, stop_after=2),
            engine=engine_for(cache, resumed_out),
        )
        if not paused.stopped_early or paused.findings_path is not None:
            failures.append("stop-after campaign did not pause")
        resumed = run_campaign(
            config_for(resumed_out, args.budget, args.cap),
            engine=engine_for(cache, resumed_out),
            resume=True,
        )
        print(f"resume: paused at {paused.scored}, resumed to {resumed.scored}")
        if resumed.findings_path.read_bytes() != first_bytes:
            failures.append("resumed campaign diverged from uninterrupted run")

        # --- chaos survival ----------------------------------------------
        chaos_out = out / "chaos"
        chaotic = run_campaign(
            config_for(
                chaos_out, args.budget, args.cap, chaos=CHAOS, max_attempts=1
            ),
            engine=engine_for(Path(tmp) / "chaos-cache", chaos_out),
        )
        print(
            f"chaos: scored {chaotic.scored}, failed {chaotic.failed} "
            f"(chaos={CHAOS!r})"
        )
        if chaotic.scored != args.budget:
            failures.append(
                f"chaos campaign aborted early: scored {chaotic.scored} of "
                f"{args.budget}"
            )
        clean_scores = {
            record["index"]: record["score"]["score"]
            for record in json.loads(
                (out / "first" / "checkpoint.json").read_text()
            )["scored"].values()
        }
        survivors = 0
        for record in json.loads(
            (chaos_out / "checkpoint.json").read_text()
        )["scored"].values():
            if record["status"] != "ok":
                continue
            survivors += 1
            if record["score"]["score"] != clean_scores[record["index"]]:
                failures.append(
                    f"chaos changed candidate {record['index']}'s score"
                )
        if survivors == 0:
            failures.append("chaos campaign had no surviving candidates")

        # --- committed adversarial suite ---------------------------------
        rows = verify_suite(
            engine=engine_for(Path(tmp) / "suite-cache", out)
        )
        drifted = [row for row in rows if not row["ok"]]
        print(f"adversarial suite: {len(rows)} pinned errors checked")
        for row in drifted:
            failures.append(
                f"adversarial drift {row['label']}/{row['method']}: "
                f"expected {row['expected']}, got {row['actual']}"
            )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("fuzz smoke OK: deterministic, resumable, chaos-tolerant")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
