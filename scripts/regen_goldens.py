"""Regenerate the golden-figure regression snapshots.

Usage::

    PYTHONPATH=src python scripts/regen_goldens.py

Writes ``tests/evaluation/goldens/*.json``: the Figure 3 accuracy,
Figure 4 dispersion and Figure 6 speedup aggregate dicts computed at the
reduced scale the regression suite replays (every challenging workload,
invocations capped). Rerun this ONLY when a deliberate pipeline change
moves the regenerated paper numbers; commit the diff alongside the change
that caused it so the drift is visible in review.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.evaluation import experiments

#: Reduced-scale parameters shared with tests/evaluation/test_goldens.py.
GOLDEN_CAP = 1200
GOLDEN_THETA = 0.4

GOLDENS_DIR = Path(__file__).resolve().parent.parent / "tests/evaluation/goldens"

FIGURES = {
    "fig3_accuracy": experiments.figure3_accuracy,
    "fig4_dispersion": experiments.figure4_dispersion,
    "fig6_speedup": experiments.figure6_speedup,
}


def golden_rows():
    """The comparison rows every golden aggregates over (serial path)."""
    return experiments.compare_methods(
        max_invocations=GOLDEN_CAP, theta=GOLDEN_THETA
    )


def main() -> int:
    GOLDENS_DIR.mkdir(parents=True, exist_ok=True)
    rows = golden_rows()
    for name, aggregate in FIGURES.items():
        payload = {
            "figure": name,
            "cap": GOLDEN_CAP,
            "theta": GOLDEN_THETA,
            "workloads": [row.workload for row in rows],
            "values": aggregate(rows),
        }
        path = GOLDENS_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
