"""Regenerate (or check) the golden-figure regression snapshots.

Usage::

    PYTHONPATH=src python scripts/regen_goldens.py          # rewrite
    PYTHONPATH=src python scripts/regen_goldens.py --check  # verify only

Writes ``tests/evaluation/goldens/*.json``: the Figure 3 accuracy,
Figure 4 dispersion and Figure 6 speedup aggregate dicts computed at the
reduced scale the regression suite replays (every challenging workload,
invocations capped). Rerun this ONLY when a deliberate pipeline change
moves the regenerated paper numbers; commit the diff alongside the change
that caused it so the drift is visible in review.

``--check`` recomputes the goldens and exits 1 with a per-value diff if
any committed snapshot disagrees — the CI golden-drift guard, catching
code changes that move fig3/4/6 aggregates without a golden refresh.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

from repro.evaluation import experiments

#: Reduced-scale parameters shared with tests/evaluation/test_goldens.py.
GOLDEN_CAP = 1200
GOLDEN_THETA = 0.4

GOLDENS_DIR = Path(__file__).resolve().parent.parent / "tests/evaluation/goldens"

FIGURES = {
    "fig3_accuracy": experiments.figure3_accuracy,
    "fig4_dispersion": experiments.figure4_dispersion,
    "fig6_speedup": experiments.figure6_speedup,
}


def golden_rows():
    """The comparison rows every golden aggregates over (serial path)."""
    return experiments.compare_methods(
        max_invocations=GOLDEN_CAP, theta=GOLDEN_THETA
    )


#: Committed goldens must match recomputation to this relative tolerance
#: (the pipeline is seed-deterministic; this only absorbs float noise).
CHECK_RTOL = 1e-6


def _payloads() -> dict[str, dict]:
    rows = golden_rows()
    return {
        name: {
            "figure": name,
            "cap": GOLDEN_CAP,
            "theta": GOLDEN_THETA,
            "workloads": [row.workload for row in rows],
            "values": aggregate(rows),
        }
        for name, aggregate in FIGURES.items()
    }


def _check(payloads: dict[str, dict]) -> int:
    drifted = 0
    for name, fresh in payloads.items():
        path = GOLDENS_DIR / f"{name}.json"
        if not path.exists():
            print(f"[{name}] MISSING: {path} not committed")
            drifted += 1
            continue
        committed = json.loads(path.read_text())
        problems = []
        if committed.get("workloads") != fresh["workloads"]:
            problems.append(
                f"  workloads: {committed.get('workloads')} != {fresh['workloads']}"
            )
        for key, fresh_value in fresh["values"].items():
            old = committed.get("values", {}).get(key)
            if old is None or not math.isclose(
                old, fresh_value, rel_tol=CHECK_RTOL, abs_tol=1e-12
            ):
                problems.append(f"  {key}: committed {old!r} != computed {fresh_value!r}")
        if problems:
            print(f"[{name}] DRIFTED:")
            print("\n".join(problems))
            drifted += 1
        else:
            print(f"[{name}] ok")
    if drifted:
        print(
            f"\n{drifted} golden(s) out of date. If the drift is deliberate, "
            f"rerun 'PYTHONPATH=src python scripts/regen_goldens.py' and "
            f"commit the diff."
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify committed goldens match recomputation; exit 1 on drift",
    )
    args = parser.parse_args(argv)
    payloads = _payloads()
    if args.check:
        return _check(payloads)
    GOLDENS_DIR.mkdir(parents=True, exist_ok=True)
    for name, payload in payloads.items():
        path = GOLDENS_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
