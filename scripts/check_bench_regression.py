"""Gate benchmark manifests against the committed baselines.

The CI ``bench-regression`` job runs the fig3/fig6 benches with
``SIEVE_BENCH_MANIFEST_DIR`` set, then runs this script to diff every
fresh ``BENCH_<figure>.json`` against ``benchmarks/baselines/``: it
fails (exit 1) on a >25% per-stage or total wall-time slowdown, on any
accuracy drift beyond float tolerance, or on a missing manifest.

The ``service-smoke`` job reuses the same gate for the sampling
service's loadgen manifest (``--figures service``) with wider wall-time
tolerances — service latency on shared runners is noisy, so that gate
leans on the manifest's deterministic aggregates (request/status
counts) and served prediction errors.

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py \\
        --current-dir /tmp/manifests [--figures fig3 fig6]
    PYTHONPATH=src python scripts/check_bench_regression.py \\
        --current-dir service-manifests --figures service \\
        --max-slowdown 5.0 --min-seconds 0.25
    PYTHONPATH=src python scripts/check_bench_regression.py \\
        --current-dir /tmp/manifests --write-baseline   # refresh baselines
    PYTHONPATH=src python scripts/check_bench_regression.py --self-test

``--repeat N`` reduces wall-time noise on shared runners: the bench is
run N times (each writing ``BENCH_<figure>.json``, then
``BENCH_<figure>.2.json`` ... ``BENCH_<figure>.N.json`` into
``--current-dir``) and the gate diffs the element-wise best (or, with
``--repeat-reduce median``, median) of the runs' wall times — accuracy
fields always come from the first run, which repeats must reproduce
exactly anyway. The CI ``scale-bench`` job uses ``--repeat 3``.

``--store DIR`` switches the gate onto the performance version store:
every repeat run is ingested *unreduced* under the current commit and
the gate becomes statistical (Mann-Whitney rank test + practical floor
over the run distributions) instead of a single-sample ratio check. The
baseline comes from ``--against REV`` (or the newest other stored
version) in ``--baseline-store`` (default: the same store), falling back
to the committed ``benchmarks/baselines/`` manifest when the store has
nothing to offer.

``--self-test`` proves the gate has teeth on both paths: it synthesizes
a current run 2x slower than the baseline and exits 0 only if the
checker flags it, and it checks the statistical gate flags a 2x-slower
trio of runs while letting a same-distribution trio pass.
"""

from __future__ import annotations

import argparse
import dataclasses
import statistics
import sys
from pathlib import Path

from repro.observability.manifest import (
    RunManifest,
    diff_manifests,
    regression_failures,
)
from repro.observability.report import render_diff

BASELINE_DIR = Path(__file__).resolve().parent.parent / "benchmarks/baselines"
DEFAULT_FIGURES = ("fig3", "fig6")


def _load(directory: Path, figure: str) -> RunManifest | None:
    path = directory / f"BENCH_{figure}.json"
    if not path.exists():
        return None
    return RunManifest.load(path)


def _repeat_paths(directory: Path, figure: str, repeat: int) -> list[Path]:
    """Manifest paths for run 1..N (run 1 keeps the unsuffixed name)."""
    return [
        directory / (f"BENCH_{figure}.json" if i == 1 else f"BENCH_{figure}.{i}.json")
        for i in range(1, repeat + 1)
    ]


def _reduce_manifests(runs: list[RunManifest], mode: str) -> RunManifest:
    """Fold N runs into one by reducing wall times element-wise.

    ``mode`` is ``best`` (min) or ``median``. Everything that is not a
    wall-clock measurement — accuracy rows, aggregates, metrics — comes
    from the first run; the pipeline is seed-deterministic, so repeats
    only differ in timings.
    """
    if len(runs) == 1:
        return runs[0]
    reduce = min if mode == "best" else statistics.median
    first = runs[0]
    stages = []
    for stage in first.stages:
        others = [
            other.stage(stage.name)
            for other in runs[1:]
            if other.stage(stage.name) is not None
        ]
        stages.append(
            dataclasses.replace(
                stage,
                wall_s=reduce([stage.wall_s, *(o.wall_s for o in others)]),
                self_s=reduce([stage.self_s, *(o.self_s for o in others)]),
            )
        )
    return dataclasses.replace(
        first,
        total_wall_s=reduce([run.total_wall_s for run in runs]),
        total_cpu_s=reduce([run.total_cpu_s for run in runs]),
        stages=tuple(stages),
    )


def _load_current(args, figure: str) -> RunManifest | None:
    """The current manifest for ``figure``, reduced over ``--repeat`` runs."""
    if args.repeat <= 1:
        return _load(args.current_dir, figure)
    runs = []
    for path in _repeat_paths(args.current_dir, figure, args.repeat):
        if not path.exists():
            print(f"[{figure}] --repeat {args.repeat}: missing {path.name}; "
                  f"using the {len(runs)} run(s) found")
            break
        runs.append(RunManifest.load(path))
    if not runs:
        return None
    return _reduce_manifests(runs, args.repeat_reduce)


def _check(args) -> int:
    failures = 0
    for figure in args.figures:
        baseline = _load(args.baseline_dir, figure)
        current = _load_current(args, figure)
        if baseline is None:
            print(f"[{figure}] no baseline in {args.baseline_dir}; "
                  f"run with --write-baseline to create one")
            failures += 1
            continue
        if current is None:
            print(f"[{figure}] no current manifest in {args.current_dir}; "
                  f"did the bench run with SIEVE_BENCH_MANIFEST_DIR set?")
            failures += 1
            continue
        regressions = diff_manifests(
            baseline,
            current,
            max_slowdown=args.max_slowdown,
            min_seconds=args.min_seconds,
        )
        print(f"=== {figure} ===")
        print(render_diff(baseline, current, regressions))
        print()
        if regression_failures(regressions):
            failures += 1
    if failures:
        print(f"FAIL: {failures} figure(s) regressed or missing")
        return 1
    print(f"OK: {len(args.figures)} figure(s) within tolerance")
    return 0


def _current_runs(args, figure: str) -> list[RunManifest]:
    """All current repeat manifests for ``figure``, unreduced."""
    runs = []
    for path in _repeat_paths(args.current_dir, figure, max(args.repeat, 1)):
        if not path.exists():
            break
        runs.append(RunManifest.load(path))
    return runs


def _check_store(args) -> int:
    """Statistical gate: ingest the repeats, compare run distributions."""
    from repro.perfstore import (
        PerfStore,
        current_version,
        gate_manifests,
        render_gate_report,
    )
    from repro.utils.errors import PerfStoreError

    store = PerfStore(args.store)
    baseline_store = (
        PerfStore(args.baseline_store) if args.baseline_store else store
    )
    version = current_version()
    failures = 0
    for figure in args.figures:
        runs = _current_runs(args, figure)
        if not runs:
            print(f"[{figure}] no current manifest in {args.current_dir}; "
                  f"did the bench run with SIEVE_BENCH_MANIFEST_DIR set?")
            failures += 1
            continue
        for manifest in runs:
            store.ingest(manifest, figure=figure, version=version)
        print(f"[{figure}] recorded {len(runs)} run(s) for "
              f"{version[:12]} into {store.root}")

        baseline_runs: list[RunManifest] = []
        label = ""
        if args.against:
            try:
                rev = baseline_store.resolve(args.against)
                baseline_runs = [
                    run.manifest for run in baseline_store.runs(rev, figure)
                ]
                label = rev[:12]
            except PerfStoreError as exc:
                print(f"[{figure}] {exc}")
        else:
            for rev in reversed(baseline_store.versions()):
                if rev == version or figure not in baseline_store.figures(rev):
                    continue
                baseline_runs = [
                    run.manifest for run in baseline_store.runs(rev, figure)
                ]
                label = rev[:12]
                break
        if not baseline_runs:
            fallback = _load(args.baseline_dir, figure)
            if fallback is None:
                print(f"[{figure}] no stored baseline and no committed "
                      f"manifest in {args.baseline_dir}")
                failures += 1
                continue
            print(f"[{figure}] no stored baseline; falling back to the "
                  f"committed single-sample manifest")
            baseline_runs = [fallback]
            label = str(args.baseline_dir / f"BENCH_{figure}.json")

        report = gate_manifests(
            baseline_runs,
            runs,
            alpha=args.alpha,
            min_ratio=args.min_ratio,
            min_seconds=args.min_seconds,
            fallback_slowdown=args.max_slowdown,
            baseline_label=label,
            current_label=version[:12],
            figure=figure,
        )
        print(f"=== {figure} ===")
        print(render_gate_report(report))
        print()
        if report.regressed:
            failures += 1
    if failures:
        print(f"FAIL: {failures} figure(s) regressed or missing")
        return 1
    print(f"OK: {len(args.figures)} figure(s) within tolerance")
    return 0


def _write_baseline(args) -> int:
    args.baseline_dir.mkdir(parents=True, exist_ok=True)
    written = 0
    for figure in args.figures:
        current = _load_current(args, figure)
        if current is None:
            print(f"[{figure}] no manifest in {args.current_dir}; skipped")
            continue
        path = current.save(args.baseline_dir / f"BENCH_{figure}.json")
        print(f"wrote {path}")
        written += 1
    return 0 if written == len(args.figures) else 1


def _slowed(manifest: RunManifest, factor: float) -> RunManifest:
    """A synthetic manifest whose every wall time is ``factor``x slower."""
    return dataclasses.replace(
        manifest,
        total_wall_s=manifest.total_wall_s * factor,
        stages=tuple(
            dataclasses.replace(
                stage,
                wall_s=stage.wall_s * factor,
                self_s=stage.self_s * factor,
            )
            for stage in manifest.stages
        ),
    )


#: Deterministic ±3% run-to-run jitter for the statistical self-test:
#: two samples drawn from "the same machine on a good day".
_BASE_JITTER = (0.97, 1.00, 1.03)
_RERUN_JITTER = (0.98, 1.01, 1.02)


def _self_test(args) -> int:
    """The gate must flag an injected 2x slowdown on every baseline.

    Two paths per figure: the legacy single-sample ratio diff, and the
    statistical gate — three jittered baseline runs vs three 2x-slower
    runs must regress, while three differently-jittered same-speed runs
    must not.
    """
    from repro.perfstore import gate_manifests

    tested = 0
    for figure in args.figures:
        baseline = _load(args.baseline_dir, figure)
        if baseline is None:
            print(f"[{figure}] no baseline to self-test against")
            return 1
        regressions = diff_manifests(
            baseline,
            _slowed(baseline, 2.0),
            max_slowdown=args.max_slowdown,
            min_seconds=args.min_seconds,
        )
        slowdowns = [
            r
            for r in regression_failures(regressions)
            if r.kind in ("total-wall", "stage-wall")
        ]
        if not slowdowns:
            print(f"[{figure}] SELF-TEST FAILED: 2x slowdown not detected")
            return 1
        print(f"[{figure}] self-test OK: 2x slowdown raised "
              f"{len(slowdowns)} wall-time regression(s)")

        base_runs = [_slowed(baseline, f) for f in _BASE_JITTER]
        slow_runs = [_slowed(baseline, 2.0 * f) for f in _RERUN_JITTER]
        rerun_runs = [_slowed(baseline, f) for f in _RERUN_JITTER]
        flagged = gate_manifests(
            base_runs, slow_runs, min_seconds=args.min_seconds, figure=figure
        )
        if not flagged.regressed:
            print(f"[{figure}] SELF-TEST FAILED: statistical gate missed a "
                  f"2x slowdown over 3 runs")
            return 1
        clean = gate_manifests(
            base_runs, rerun_runs, min_seconds=args.min_seconds, figure=figure
        )
        if clean.regressed:
            print(f"[{figure}] SELF-TEST FAILED: statistical gate flagged "
                  f"same-distribution reruns")
            return 1
        print(f"[{figure}] self-test OK: statistical gate flags 2x over 3 "
              f"runs and passes jittered reruns")
        tested += 1
    print(f"OK: gate detects slowdowns on {tested} figure(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir", type=Path, default=BASELINE_DIR,
        help=f"committed baseline manifests (default {BASELINE_DIR})",
    )
    parser.add_argument(
        "--current-dir", type=Path, default=None,
        help="directory with freshly produced BENCH_<figure>.json files",
    )
    parser.add_argument(
        "--figures", nargs="+", default=list(DEFAULT_FIGURES),
        help=f"figures to gate (default: {' '.join(DEFAULT_FIGURES)})",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=1.25,
        help="wall-time ratio tolerated per stage and total (default 1.25)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="absolute slowdown floor below which noise is ignored "
        "(default 0.05s)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="number of current runs to reduce before diffing: run 1 is "
        "BENCH_<figure>.json, runs 2..N are BENCH_<figure>.<i>.json "
        "(default 1)",
    )
    parser.add_argument(
        "--repeat-reduce", choices=("best", "median"), default="best",
        help="wall-time reduction across --repeat runs (default best)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="copy current manifests into the baseline dir instead of diffing",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify the gate flags a synthetic 2x slowdown of the baseline "
        "(single-sample and statistical paths)",
    )
    parser.add_argument(
        "--store", type=Path, default=None,
        help="performance store directory: ingest every repeat run "
        "unreduced under the current commit and gate statistically",
    )
    parser.add_argument(
        "--baseline-store", type=Path, default=None,
        help="store to resolve the baseline from (default: --store; e.g. "
        "the committed benchmarks/perfstore snapshot)",
    )
    parser.add_argument(
        "--against", default=None,
        help="baseline revision in the baseline store (default: newest "
        "stored version other than the current one)",
    )
    parser.add_argument(
        "--alpha", type=float, default=0.05,
        help="rank-test significance level for --store mode (default 0.05)",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=1.10,
        help="practical median-slowdown floor for --store mode "
        "(default 1.10)",
    )
    args = parser.parse_args(argv)
    if args.self_test:
        return _self_test(args)
    if args.current_dir is None:
        parser.error("--current-dir is required unless --self-test")
    if args.write_baseline:
        return _write_baseline(args)
    if args.store is not None:
        return _check_store(args)
    return _check(args)


if __name__ == "__main__":
    sys.exit(main())
