"""Streaming smoke: bounded-memory pass over a 1M-invocation feed.

Builds one large synthetic profile (default: 1 000 000 invocations over
64 kernels — 60 tier-1/2 kernels carrying the bulk plus 4 rare bimodal
tier-3 kernels of ~1000 invocations each), then:

* streams it chunk-by-chunk through Sieve's incremental operator with a
  *bounded* per-kernel reservoir and **fails** unless the stream's
  resident high-water mark stays a small fraction of the feed (the
  O(kernels + reservoir) memory claim, read off the
  ``streaming.high_water_rows`` gauge) and the process RSS growth during
  the pass stays bounded;
* runs the classic batch ``SievePipeline.select`` on the same table and
  **fails** unless the streamed selection's representatives are
  *identical* (every field of every pick) — the rare kernels fit the
  reservoir so their KDE splits are exact, and the evicted tier-1/2
  kernels keep exact picks through the stream's first/CTA trackers;
* when ``SIEVE_BENCH_MANIFEST_DIR`` is set, writes
  ``BENCH_streaming.json`` (per-stage wall times + deterministic
  aggregates) for the CI ``streaming-smoke`` job to diff against
  ``benchmarks/baselines/`` via
  ``scripts/check_bench_regression.py --figures streaming``.

Usage::

    PYTHONPATH=src python scripts/streaming_smoke.py
    PYTHONPATH=src python scripts/streaming_smoke.py --rows 200000
    SIEVE_BENCH_MANIFEST_DIR=/tmp/m PYTHONPATH=src python scripts/streaming_smoke.py
"""

from __future__ import annotations

import argparse
import os
import resource
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.config import SieveConfig
from repro.core.pipeline import SievePipeline
from repro.methods import get_method
from repro.observability import manifest as obs_manifest
from repro.observability import metrics, span
from repro.observability import spans as obs_spans
from repro.profiling.table import ProfileTable
from repro.streaming.base import StreamContext, iter_table_chunks

DEFAULT_ROWS = 1_000_000
DEFAULT_CHUNK_ROWS = 8192
DEFAULT_RESERVOIR = 4096
#: Dense tier-1/2 kernels; four rare tier-3 kernels ride on top.
DENSE_KERNELS = 60
RARE_KERNELS = 4
#: Every RARE_STRIDE-th row is diverted to a rare kernel, round-robin:
#: ~rows/RARE_STRIDE/RARE_KERNELS invocations per rare kernel, sized to
#: stay *under* the bounded reservoir so their KDE splits remain exact.
RARE_STRIDE = 251

WORKLOAD = "stream-smoke"


def build_feed(rows: int = DEFAULT_ROWS, seed: int = 20230507) -> ProfileTable:
    """The synthetic feed: deterministic, interleaved, mostly tier-1/2."""
    rng = np.random.default_rng(seed)
    kernel_id = rng.integers(0, DENSE_KERNELS, rows).astype(np.int32)
    rare_rows = np.arange(0, rows, RARE_STRIDE)
    kernel_id[rare_rows] = (
        DENSE_KERNELS + (rare_rows // RARE_STRIDE) % RARE_KERNELS
    ).astype(np.int32)

    insn = np.empty(rows, dtype=np.int64)
    # Dense kernels: even ids are tier-1 (constant counts), odd ids are
    # tier-2 (a few percent of jitter, far under the theta=0.4 split).
    base = 50_000 + 1_500 * np.arange(DENSE_KERNELS, dtype=np.int64)
    insn[:] = base[np.clip(kernel_id, 0, DENSE_KERNELS - 1)]
    odd = np.flatnonzero((kernel_id < DENSE_KERNELS) & (kernel_id % 2 == 1))
    insn[odd] += rng.integers(-500, 501, len(odd))
    # Rare kernels: bimodal counts (two well-separated modes) so the KDE
    # valley split genuinely fires and produces multiple strata.
    for k in range(RARE_KERNELS):
        members = np.flatnonzero(kernel_id == DENSE_KERNELS + k)
        low = rng.normal(10_000, 400, len(members))
        high = rng.normal(120_000, 3_000, len(members))
        pick_high = rng.random(len(members)) < 0.5
        insn[members] = np.where(pick_high, high, low).astype(np.int64)
    insn = np.maximum(insn, 1)

    # Per-kernel chronological invocation ids, vectorized via a stable
    # sort: within a kernel, rank == arrival index.
    order = np.argsort(kernel_id, kind="stable")
    counts = np.bincount(kernel_id, minlength=DENSE_KERNELS + RARE_KERNELS)
    starts = np.repeat(
        np.concatenate(([0], np.cumsum(counts)))[:-1][counts > 0],
        counts[counts > 0],
    )
    invocation_id = np.empty(rows, dtype=np.int64)
    invocation_id[order] = np.arange(rows, dtype=np.int64) - starts

    num_kernels = DENSE_KERNELS + RARE_KERNELS
    return ProfileTable(
        workload=WORKLOAD,
        kernel_names=tuple(f"smoke_k{k:03d}" for k in range(num_kernels)),
        kernel_id=kernel_id,
        invocation_id=invocation_id,
        insn_count=insn,
        cta_size=(128 + 32 * (np.asarray(kernel_id) % 8)).astype(np.int32),
        num_ctas=rng.integers(1, 2048, rows).astype(np.int64),
    )


def _rss_mb() -> float:
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return usage / 1024.0 if sys.platform != "darwin" else usage / (1024.0**2)


def run_streaming(
    table: ProfileTable, chunk_rows: int, reservoir_rows: int, config: SieveConfig
):
    """Stream the feed through Sieve's incremental operator."""
    method = get_method("sieve")
    stream = method.begin_stream(
        StreamContext(workload=table.workload, reservoir_rows=reservoir_rows),
        config,
    )
    rss_before = _rss_mb()
    with span("streaming.pass", rows=len(table), chunk_rows=chunk_rows):
        for chunk in iter_table_chunks(table, chunk_rows):
            stream.observe(chunk)
        selection = stream.finalize()
    return selection, _rss_mb() - rss_before


def run_batch(table: ProfileTable, config: SieveConfig):
    with span("streaming.batch", rows=len(table)):
        return SievePipeline(config).select(table)


def check_picks_identical(streamed, batch) -> None:
    assert streamed.workload == batch.workload
    assert streamed.total_instructions == batch.total_instructions
    assert streamed.num_invocations == batch.num_invocations
    assert len(streamed.representatives) == len(batch.representatives), (
        f"representative count diverged: streamed "
        f"{len(streamed.representatives)} != batch {len(batch.representatives)}"
    )
    for got, want in zip(streamed.representatives, batch.representatives):
        assert got == want, f"pick diverged:\n  streamed {got}\n  batch    {want}"


def write_manifest(report: dict, mark: tuple[int, int, float, float]):
    """Write ``BENCH_streaming.json`` when ``SIEVE_BENCH_MANIFEST_DIR`` is set."""
    directory = os.environ.get("SIEVE_BENCH_MANIFEST_DIR")
    if not directory:
        return None
    since, events_since, wall_start, cpu_start = mark
    # The measured RSS delta is informational and run-varying, so it
    # rides as an event: config keys feed the perfstore's experiment-
    # shape fingerprint and must stay stable across repeats. The memory
    # bound itself is enforced by this script's own assertions.
    obs_manifest.record_event(
        "streaming.rss", rss_delta_mb=round(report["rss_delta_mb"], 1)
    )
    manifest = obs_manifest.collect_manifest(
        "bench streaming",
        config={
            "rows": report["rows"],
            "chunk_rows": report["chunk_rows"],
            "reservoir_rows": report["reservoir_rows"],
        },
        workloads=[
            {
                "workload": WORKLOAD,
                "num_representatives": report["num_representatives"],
            }
        ],
        aggregates={
            "rows": report["rows"],
            "kernels": DENSE_KERNELS + RARE_KERNELS,
            "num_representatives": report["num_representatives"],
            "high_water_rows": report["high_water_rows"],
            "picks_identical": 1,
        },
        since=since,
        events_since=events_since,
        total_wall_s=time.perf_counter() - wall_start,
        total_cpu_s=time.process_time() - cpu_start,
    )
    path = manifest.save(Path(directory) / "BENCH_streaming.json")
    from repro.perfstore.store import maybe_record

    maybe_record(manifest, figure="streaming")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS)
    parser.add_argument("--chunk-rows", type=int, default=DEFAULT_CHUNK_ROWS)
    parser.add_argument("--reservoir", type=int, default=DEFAULT_RESERVOIR)
    parser.add_argument(
        "--max-resident-fraction", type=float, default=0.5,
        help="fail when the stream's high-water resident rows exceed this "
        "fraction of the feed (default 0.5; the default geometry sits "
        "near 0.27)",
    )
    parser.add_argument(
        "--max-rss-delta-mb", type=float, default=512.0,
        help="fail when process peak RSS grows more than this during the "
        "streaming pass",
    )
    args = parser.parse_args(argv)

    mark = (obs_spans.mark(), obs_manifest.events_mark(),
            time.perf_counter(), time.process_time())
    config = SieveConfig()
    with span("streaming.feed", rows=args.rows):
        table = build_feed(args.rows)
    print(f"streaming smoke: {len(table):,} invocations over "
          f"{table.num_kernels} kernels, chunk={args.chunk_rows}, "
          f"reservoir={args.reservoir}")

    streamed, rss_delta = run_streaming(
        table, args.chunk_rows, args.reservoir, config
    )
    high_water = int(
        metrics.get_registry().gauges.get("streaming.high_water_rows", 0)
    )
    print(f"streamed: {len(streamed.representatives)} representatives, "
          f"high-water {high_water:,} resident rows "
          f"({high_water / len(table):.1%} of feed), "
          f"rss delta {rss_delta:.1f} MiB")

    batch = run_batch(table, config)
    check_picks_identical(streamed, batch)
    print(f"batch:    {len(batch.representatives)} representatives — "
          f"picks identical")

    report = {
        "rows": len(table),
        "chunk_rows": args.chunk_rows,
        "reservoir_rows": args.reservoir,
        "num_representatives": len(streamed.representatives),
        "high_water_rows": high_water,
        "rss_delta_mb": rss_delta,
    }
    path = write_manifest(report, mark)
    if path:
        print(f"manifest: {path}")

    bound = args.max_resident_fraction * len(table)
    if high_water > bound:
        print(f"FAIL: high-water {high_water:,} resident rows exceeds "
              f"{args.max_resident_fraction:.0%} of the "
              f"{len(table):,}-row feed", file=sys.stderr)
        return 1
    if rss_delta > args.max_rss_delta_mb:
        print(f"FAIL: streaming pass grew peak RSS by {rss_delta:.1f} MiB "
              f"(> {args.max_rss_delta_mb:.0f} MiB)", file=sys.stderr)
        return 1
    print(f"OK: bounded pass ({high_water:,} <= {bound:,.0f} resident rows) "
          f"reproduced the batch picks exactly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
