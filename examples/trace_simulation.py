"""Trace-driven simulation of Sieve's selection (Section V-G).

Demonstrates the tail of the Sieve workflow: representative invocations
become plain-text SASS-like trace files, which a cycle-level trace-driven
simulator (a miniature Accel-sim) executes. Also shows the PKP-style
IPC-convergence projection — the orthogonal speedup the paper notes can be
stacked on top of any sampling method.

Run:  python examples/trace_simulation.py [workload]
"""

import sys
import tempfile
from pathlib import Path

from repro import NVBitProfiler, SievePipeline, generate, spec_for
from repro.evaluation.reporting import format_table
from repro.trace.projection import simulate_with_projection
from repro.trace.simulator import SimulatorConfig, TraceSimulator
from repro.trace.tracer import SelectionTracer, TracerConfig

workload = sys.argv[1] if len(sys.argv) > 1 else "cactus/gru"

run = generate(spec_for(workload))
profile, _ = NVBitProfiler().profile(run)
selection = SievePipeline().select(profile)
print(f"{run.label}: {selection.num_representatives} representative "
      f"invocations out of {run.num_invocations:,}\n")

# 1. Emit plain-text traces for a handful of representatives.
tracer = SelectionTracer(TracerConfig(max_warps=16, max_warp_instructions=512))
subset = selection.representatives[:5]
with tempfile.TemporaryDirectory() as tmp:
    for rep in subset:
        trace = tracer.trace_invocation(run, rep.kernel_name, rep.invocation_id)
        path = Path(tmp) / f"{rep.kernel_name}_{rep.invocation_id}.trace"
        from repro.trace.encoding import render_trace

        path.write_text(render_trace(trace))
        print(f"wrote {path.name}: {trace.num_warps} warps, "
              f"{trace.num_instructions} warp-instructions, "
              f"{path.stat().st_size / 1024:.0f} KiB")

# 2. Simulate each trace cycle by cycle.
simulator = TraceSimulator(SimulatorConfig(num_sms=2))
rows = []
for rep in subset:
    trace = tracer.trace_invocation(run, rep.kernel_name, rep.invocation_id)
    result = simulator.simulate(trace)
    rows.append(
        (rep.kernel_name, rep.invocation_id, result.cycles,
         f"{result.ipc:.1f}", f"{result.l1_hit_rate:.2f}",
         f"{result.l2_hit_rate:.2f}", result.dram_requests)
    )
print()
print(format_table(
    ["kernel", "invocation", "cycles", "ipc", "l1_hit", "l2_hit", "dram"],
    rows,
))

# 3. PKP-style projection: stop once the running IPC converges.
print("\nPKP-style projection (simulate warp batches until IPC converges):")
rows = []
for rep in subset[:3]:
    trace = tracer.trace_invocation(run, rep.kernel_name, rep.invocation_id)
    projection = simulate_with_projection(
        trace, SimulatorConfig(num_sms=2), batch_warps=4, tolerance=0.12
    )
    rows.append(
        (rep.kernel_name, projection.converged,
         f"{projection.simulated_warp_fraction:.0%}",
         f"{projection.projected_ipc:.1f}")
    )
print(format_table(
    ["kernel", "converged", "warps simulated", "projected ipc"], rows
))
