"""MLPerf sampling study: Sieve vs PKS on the ML inference workloads.

The scenario the paper's introduction motivates: MLPerf workloads would
take "a century to simulate" in full, so architects must sample. This
example compares Sieve and PKS end to end on every MLPerf workload —
accuracy, dispersion, selection size, simulation speedup and modeled
profiling cost — and prints an Accel-sim time budget for the selected
invocations.

Run:  python examples/mlperf_sampling_study.py
"""

from repro.core.pipeline import SievePipeline
from repro.evaluation.context import build_context
from repro.evaluation.reporting import format_table, percent, times
from repro.evaluation.runner import evaluate_pks, evaluate_sieve
from repro.trace.simtime import estimate_simulation_time
from repro.workloads.catalog import specs_for_suites

rows = []
sim_rows = []
for spec in specs_for_suites(("mlperf",)):
    context = build_context(spec.label)
    sieve = evaluate_sieve(context)
    pks = evaluate_pks(context)
    rows.append(
        (
            spec.name,
            f"{context.run.num_invocations:,}",
            percent(sieve.error),
            percent(pks.error),
            sieve.num_representatives,
            pks.num_representatives,
            times(sieve.speedup),
            f"{context.pks_profiling.total_days:.1f}d",
            f"{context.sieve_profiling.total_days:.2f}d",
        )
    )
    selection = SievePipeline().select(context.sieve_table)
    estimate = estimate_simulation_time(selection, context.golden)
    sim_rows.append(
        (
            spec.name,
            estimate.num_traces,
            f"{estimate.serial_days:.2f}",
            f"{estimate.parallel_hours:.2f}",
        )
    )

print("MLPerf inference: Sieve vs PKS")
print(
    format_table(
        ["workload", "invocations", "sieve_err", "pks_err", "sieve_reps",
         "pks_reps", "speedup", "pks_profile", "sieve_profile"],
        rows,
    )
)
print()
print("Simulating the Sieve selections on Accel-sim (modeled at 6 KIPS):")
print(
    format_table(
        ["workload", "traces", "serial_days", "parallel_hours"], sim_rows
    )
)
print()
full_years = sum(
    build_context(spec.label).golden.total_instructions
    for spec in specs_for_suites(("mlperf",))
) / 6000.0 / 86_400 / 365
print(f"Simulating the full suite at 6 KIPS would take ~{full_years:,.0f} "
      "years; the Sieve selections fit in days of parallel simulation.")
