"""Sampling a custom workload and tuning theta.

Downstream users will not be sampling the paper's suites — they will bring
their own profiles. This example (1) describes a brand-new workload
statistically, (2) writes/reads its profile through the CSV format the
paper's scripts use, and (3) sweeps Sieve's theta threshold to pick an
accuracy/speedup trade-off, reproducing the Figure 10 methodology on a
workload the paper never saw.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import AMPERE_RTX3080, HardwareExecutor, NVBitProfiler
from repro.core import SieveConfig, SievePipeline
from repro.evaluation.reporting import format_table, percent, times
from repro.profiling.csv_io import read_profile_csv, write_profile_csv
from repro.workloads.generator import generate
from repro.workloads.spec import KernelBehavior, WorkloadSpec

# 1. A brand-new workload: a hypothetical graph-analytics application with
#    a frontier-dependent kernel population (heavy Tier-3 structure).
spec = WorkloadSpec(
    name="pagerank-like",
    suite="custom",
    num_kernels=24,
    num_invocations=40_000,
    tier_fractions=(0.3, 0.3, 0.4),
    behavior=KernelBehavior(
        tier2_cov=0.35, tier3_modes=10, tier3_spread=80.0, tier3_mode_cov=0.2
    ),
    insn_scale=3.0e8,
    alias_groups=4,
    metric_direction_sigma=0.6,
    heterogeneity=0.35,
    drift_fraction=0.25,
    drift_factor=0.2,
    chrono_size_correlation=0.9,  # frontier grows as iterations proceed
)
run = generate(spec)
golden = HardwareExecutor(AMPERE_RTX3080).measure(run)
print(f"{run.label}: {run.num_invocations:,} invocations across "
      f"{len(run.kernels)} kernels, {golden.total_cycles:,} golden cycles\n")

# 2. Profile -> CSV -> back (the paper's file-based workflow).
table, cost = NVBitProfiler().profile(run)
with tempfile.TemporaryDirectory() as tmp:
    csv_path = Path(tmp) / "profile.csv"
    write_profile_csv(table, csv_path)
    print(f"profile written to CSV ({csv_path.stat().st_size / 1e6:.1f} MB), "
          "reloading...")
    table = read_profile_csv(csv_path)

# 3. Theta sweep: accuracy vs speedup (Figure 10 methodology).
rows = []
for theta in (0.1, 0.2, 0.4, 0.6, 0.8, 1.0):
    sieve = SievePipeline(SieveConfig(theta=theta))
    selection = sieve.select(table)
    prediction = sieve.predict(selection, golden)
    rows.append(
        (
            theta,
            selection.num_representatives,
            percent(prediction.error_against(golden.total_cycles)),
            times(golden.total_cycles / selection.sample_cycles(golden)),
        )
    )

print(format_table(["theta", "representatives", "error", "speedup"], rows))
print("\nPick the largest theta whose error is acceptable; the paper lands "
      "on theta = 0.4.")
