"""Architecture design-space exploration with a reusable Sieve selection.

The point of microarchitecture-independent sampling: select representative
invocations ONCE, then evaluate every candidate architecture by running
only those representatives. This example sweeps a small design space
around the RTX 3080 (SM count, memory bandwidth and the Turing
configuration) and checks Sieve's predicted ranking against the full
golden reference on each configuration — the Figure 9 use case
generalized.

Run:  python examples/design_space_exploration.py [workload]
"""

import dataclasses
import sys

from repro import (
    AMPERE_RTX3080,
    TURING_RTX2080TI,
    HardwareExecutor,
    NVBitProfiler,
    SievePipeline,
    generate,
    spec_for,
)
from repro.evaluation.reporting import format_table, percent

workload = sys.argv[1] if len(sys.argv) > 1 else "cactus/lgt"

DESIGN_SPACE = {
    "rtx3080 (baseline)": AMPERE_RTX3080,
    "rtx2080ti": TURING_RTX2080TI,
    "half-SMs": dataclasses.replace(AMPERE_RTX3080, name="half-sm", num_sms=34),
    "low-bandwidth": dataclasses.replace(
        AMPERE_RTX3080, name="low-bw", dram_bandwidth_gbs=380.0
    ),
    "high-bandwidth": dataclasses.replace(
        AMPERE_RTX3080, name="high-bw", dram_bandwidth_gbs=1140.0
    ),
}

run = generate(spec_for(workload))
profile, _ = NVBitProfiler().profile(run)

# Selection happens once: Sieve's representatives depend only on the
# microarchitecture-independent profile.
sieve = SievePipeline()
selection = sieve.select(profile)
print(f"{run.label}: {selection.num_representatives} representatives "
      f"selected once, reused for every configuration\n")

rows = []
for label, arch in DESIGN_SPACE.items():
    measurement = HardwareExecutor(arch).measure(run)
    prediction = sieve.predict(selection, measurement)
    true_seconds = measurement.wall_time_seconds
    predicted_seconds = prediction.predicted_cycles / (arch.clock_ghz * 1e9)
    rows.append(
        (
            label,
            f"{true_seconds:.3f}s",
            f"{predicted_seconds:.3f}s",
            percent(abs(predicted_seconds - true_seconds) / true_seconds),
        )
    )

print(format_table(
    ["configuration", "true wall time", "predicted", "error"], rows
))

true_order = sorted(rows, key=lambda r: float(r[1][:-1]))
predicted_order = sorted(rows, key=lambda r: float(r[2][:-1]))
ranking_preserved = [r[0] for r in true_order] == [r[0] for r in predicted_order]
print(f"\ndesign-space ranking preserved by Sieve: {ranking_preserved}")
