"""Quickstart: sample one workload with Sieve and predict its performance.

Runs the complete Figure 1 workflow on one Cactus workload:

1. generate the workload (the synthetic stand-in for a real execution);
2. profile it with the light-weight NVBit-style profiler (one
   characteristic per invocation: dynamic instruction count);
3. stratify and select representative kernel invocations with Sieve;
4. "run" the representatives on the modeled RTX 3080 and predict the
   whole application's cycle count;
5. compare against the golden reference.

Run:  python examples/quickstart.py [workload] [theta]
"""

import sys

from repro import (
    AMPERE_RTX3080,
    HardwareExecutor,
    NVBitProfiler,
    SieveConfig,
    SievePipeline,
    generate,
    spec_for,
)

workload = sys.argv[1] if len(sys.argv) > 1 else "cactus/lmc"
theta = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4

# 1. The workload: kernels, invocations, launch shapes, instruction counts.
run = generate(spec_for(workload))
print(f"workload      : {run.label}")
print(f"kernels       : {len(run.kernels)}")
print(f"invocations   : {run.num_invocations:,}")
print(f"instructions  : {run.total_instructions:.3e}")

# 2. Profile: one pass, one characteristic (Section III-A).
profile, cost = NVBitProfiler().profile(run)
print(f"profiling     : {cost.total_seconds:,.0f} s modeled ({cost.tool})")

# 3. Stratify + select representatives (Sections III-B and III-C).
sieve = SievePipeline(SieveConfig(theta=theta))
selection = sieve.select(profile)
print(f"strata        : {len(selection.strata)} "
      f"(theta = {theta}, one representative each)")

# 4-5. Execute, predict, compare (Section III-D).
golden = HardwareExecutor(AMPERE_RTX3080).measure(run)
prediction = sieve.predict(selection, golden)
error = prediction.error_against(golden.total_cycles)
speedup = golden.total_cycles / selection.sample_cycles(golden)

print(f"golden cycles : {golden.total_cycles:,}")
print(f"predicted     : {prediction.predicted_cycles:,.0f}")
print(f"error         : {error * 100:.2f}%")
print(f"speedup       : {speedup:,.0f}x fewer cycles to simulate")
