"""Ablation: Sieve representative-selection policies.

The paper's chosen policy is first-chronological-with-dominant-CTA; it
explicitly reports trying max-CTA selection and finding it less accurate
(Section III-C). This bench sweeps all policies.
"""

import numpy as np

from repro.core.config import SELECTION_POLICIES, SieveConfig
from repro.evaluation.context import build_context
from repro.evaluation.reporting import format_table, percent
from repro.evaluation.runner import evaluate_sieve

from _common import banner, emit

WORKLOADS = ("cactus/spt", "cactus/lmc", "mlperf/rnnt", "mlperf/bert")


def _sweep():
    rows = []
    for label in WORKLOADS:
        context = build_context(label)
        row = {"workload": label}
        for policy in SELECTION_POLICIES:
            result = evaluate_sieve(
                context, SieveConfig(selection_policy=policy)
            )
            row[policy] = result.error
        rows.append(row)
    return rows


def test_ablation_sieve_selection_policies(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    banner("Ablation: Sieve selection policy (error per policy)")
    emit(format_table(
        ["workload", *SELECTION_POLICIES],
        [[r["workload"], *[percent(r[p]) for p in SELECTION_POLICIES]]
         for r in rows],
    ))
    averages = {p: float(np.mean([r[p] for r in rows])) for p in SELECTION_POLICIES}
    emit("\naverages: " + ", ".join(
        f"{p} {percent(averages[p])}" for p in SELECTION_POLICIES
    ))
    # Every Sieve policy stays accurate — stratification, not selection,
    # carries the accuracy (the paper's core claim).
    assert max(averages.values()) < 0.06
