"""Figure 10: Sieve error vs speedup as a function of theta."""

from repro.evaluation.experiments import figure10_theta_sweep
from repro.evaluation.reporting import format_table, percent, times

from _common import SCALE_CAP, banner, emit

THETAS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0)


def test_fig10_theta_sensitivity(benchmark):
    rows = benchmark.pedantic(
        figure10_theta_sweep, kwargs={"thetas": THETAS,
                                      "max_invocations": SCALE_CAP},
        rounds=1, iterations=1,
    )
    banner("Figure 10: Sieve prediction error vs speedup per theta")
    emit(format_table(
        ["theta", "avg_error", "max_error", "hmean_speedup"],
        [
            (r["theta"], percent(r["avg_error"]), percent(r["max_error"]),
             times(r["hmean_speedup"]))
            for r in rows
        ],
    ))
    below_half = [r["avg_error"] for r in rows if r["theta"] < 0.5]
    at_one = [r for r in rows if r["theta"] == 1.0][0]
    emit(
        f"\nerror below θ=0.5: ≤ {percent(max(below_half))} "
        "(paper: below 1.6%); "
        f"error at θ=1.0: {percent(at_one['avg_error'])} (paper: 4.8%)"
    )
    # Shape: small theta keeps error low and error grows toward theta = 1,
    # while speedup varies far less than the representative count does.
    assert max(below_half) < 0.03
    assert at_one["avg_error"] >= max(below_half)
    speedups = [r["hmean_speedup"] for r in rows]
    assert max(speedups) / min(speedups) < 25
