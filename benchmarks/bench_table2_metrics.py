"""Table II: execution characteristics profiled by PKS versus Sieve."""

from repro.evaluation.experiments import table2_metrics
from repro.evaluation.reporting import format_table

from _common import banner, emit


def test_table2_metrics(benchmark):
    rows = benchmark.pedantic(table2_metrics, rounds=1, iterations=1)
    banner("Table II: execution characteristics (PKS: 12, Sieve: 1)")
    emit(format_table(
        ["execution characteristic", "PKS", "Sieve"],
        [(r["characteristic"], r["pks"], r["sieve"]) for r in rows],
    ))
    assert sum(1 for r in rows if r["pks"]) == 12
    assert sum(1 for r in rows if r["sieve"]) == 1
