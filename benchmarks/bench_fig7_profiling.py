"""Figure 7: profiling-time speedup of Sieve (NVBit) over PKS (Nsight)."""

from repro.evaluation.experiments import figure7_profiling
from repro.evaluation.metrics import harmonic_mean
from repro.evaluation.reporting import format_table, times

from _common import SCALE_CAP, banner, emit


def test_fig7_profiling_time(benchmark):
    rows = benchmark.pedantic(
        figure7_profiling, kwargs={"max_invocations": SCALE_CAP},
        rounds=1, iterations=1,
    )
    banner("Figure 7: profiling time, PKS (Nsight Compute) vs Sieve (NVBit)")
    emit(format_table(
        ["workload", "pks_days", "sieve_days", "speedup"],
        [
            (r["workload"], f"{r['pks_days']:.3f}", f"{r['sieve_days']:.4f}",
             times(r["speedup"]))
            for r in rows
        ],
    ))
    speedups = [r["speedup"] for r in rows]
    cactus = [r["speedup"] for r in rows if r["workload"].startswith("cactus")]
    mlperf = [r["speedup"] for r in rows if r["workload"].startswith("mlperf")]
    emit(
        f"\nharmonic mean {harmonic_mean(speedups):.1f}x, "
        f"max {max(speedups):.1f}x   (paper: 8x mean, up to 98x)"
    )
    emit(
        f"Cactus hmean {harmonic_mean(cactus):.1f}x vs MLPerf hmean "
        f"{harmonic_mean(mlperf):.1f}x — MLPerf gains more, as in the paper"
    )
    assert harmonic_mean(speedups) > 2
    assert harmonic_mean(mlperf) > harmonic_mean(cactus)
