"""Figure 2: tier fractions as a function of theta (0.1, 0.5, 1.0)."""

import numpy as np

from repro.evaluation.experiments import figure2_tiers
from repro.evaluation.reporting import format_table

from _common import SCALE_CAP, banner, emit

THETAS = (0.1, 0.5, 1.0)


def test_fig2_tier_fractions(benchmark):
    rows = benchmark.pedantic(
        figure2_tiers, args=(THETAS, SCALE_CAP), rounds=1, iterations=1
    )
    banner("Figure 2: invocation fractions in Tier-1/2/3 per theta")
    headers = ["workload"] + [f"t1/t2/t3 @ θ={t}" for t in THETAS]
    table_rows = []
    for row in rows:
        cells = [row["workload"]]
        for theta in THETAS:
            cells.append(
                f"{row[f'tier1@{theta}']*100:3.0f}/"
                f"{row[f'tier2@{theta}']*100:3.0f}/"
                f"{row[f'tier3@{theta}']*100:3.0f}%"
            )
        table_rows.append(cells)
    emit(format_table(headers, table_rows))

    tier1 = float(np.mean([r[f"tier1@{THETAS[0]}"] for r in rows]))
    tier2 = {t: float(np.mean([r[f"tier2@{t}"] for r in rows])) for t in THETAS}
    emit(f"\navg Tier-1 fraction: {tier1*100:.0f}%   (paper: 41%)")
    emit(
        "avg Tier-2 fraction: "
        + ", ".join(f"{tier2[t]*100:.0f}% @ θ={t}" for t in THETAS)
        + "   (paper: 22% @ 0.1, 42% @ 0.5, 49% @ 1.0)"
    )
    # Shape assertions: most invocations are Tier-1/2, Tier-2 grows with θ.
    assert tier1 > 0.25
    assert tier2[1.0] > tier2[0.1]
