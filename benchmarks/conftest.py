"""Benchmark-harness conftest: route experiment output past capture."""

import pytest

import _common


@pytest.fixture(autouse=True)
def uncaptured_emit(request):
    """Print bench tables through a capture-disabled writer so the
    regenerated figures appear in the `pytest benchmarks/` output."""
    capture_manager = request.config.pluginmanager.getplugin("capturemanager")

    def writer(text: str) -> None:
        with capture_manager.global_and_fixture_disabled():
            print(text, flush=True)

    _common.set_writer(writer)
    yield
    _common.set_writer(print)
