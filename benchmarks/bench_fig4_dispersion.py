"""Figure 4: within-cluster cycle-count CoV for Sieve and PKS."""

from repro.evaluation.experiments import compare_methods, figure4_dispersion
from repro.evaluation.reporting import format_table

from _common import (
    SCALE_CAP,
    banner,
    emit,
    engine_summary,
    manifest_mark,
    shared_engine,
    write_bench_manifest,
)


def test_fig4_cycle_dispersion(benchmark):
    mark = manifest_mark()
    rows = benchmark.pedantic(
        compare_methods,
        kwargs={"max_invocations": SCALE_CAP, "engine": shared_engine()},
        rounds=1, iterations=1,
    )
    banner("Figure 4: within-cluster cycle CoV (weighted average)")
    emit(engine_summary())
    emit(format_table(
        ["workload", "sieve_cov", "pks_cov"],
        [(r.workload, f"{r.sieve.cycle_cov:.2f}", f"{r.pks.cycle_cov:.2f}")
         for r in rows],
    ))
    aggregate = figure4_dispersion(rows)
    emit(
        f"\nSieve: avg {aggregate['sieve_avg']:.2f}, max {aggregate['sieve_max']:.2f}"
        "   (paper: 0.09 avg, 0.20 max)"
    )
    emit(
        f"PKS:   avg {aggregate['pks_avg']:.2f}, max {aggregate['pks_max']:.2f}"
        "   (paper: 0.57 avg, 3.25 max)"
    )
    write_bench_manifest("fig4", rows, aggregate, mark)
    # Shape: Sieve strata are far tighter than PKS clusters.
    assert aggregate["sieve_avg"] < 0.3
    assert aggregate["pks_avg"] > 2 * aggregate["sieve_avg"]
