"""Shared helpers for the benchmark harness.

Benches regenerate the paper's tables and figures at full Table I scale
and print the rows/series the paper reports. Output goes through ``emit``,
whose writer is swapped by ``conftest.py`` to bypass pytest's capture so
``pytest benchmarks/ --benchmark-only`` shows the regenerated data
alongside the timings.
"""

from __future__ import annotations

from typing import Callable

#: None = full Table I scale (the default used for reported results).
SCALE_CAP: int | None = None

_writer: Callable[[str], None] = print


def set_writer(writer: Callable[[str], None]) -> None:
    """Install the output writer (used by conftest to bypass capture)."""
    global _writer
    _writer = writer


def emit(text: str) -> None:
    """Print harness output through the installed writer."""
    _writer(text)


def banner(title: str) -> None:
    emit("")
    emit("=" * 78)
    emit(title)
    emit("=" * 78)
