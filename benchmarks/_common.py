"""Shared helpers for the benchmark harness.

Benches regenerate the paper's tables and figures at full Table I scale
and print the rows/series the paper reports. Output goes through ``emit``,
whose writer is swapped by ``conftest.py`` to bypass pytest's capture so
``pytest benchmarks/ --benchmark-only`` shows the regenerated data
alongside the timings.

The comparison benches (fig3/fig4/fig6/fig8) share one
:class:`~repro.evaluation.engine.EvaluationEngine`, configured from the
environment:

* ``SIEVE_BENCH_JOBS`` — worker processes (default 1 = serial);
* ``SIEVE_BENCH_CACHE_DIR`` — result cache location (default: a fresh
  per-run temp dir, so fig4/fig6 reuse fig3's results within one run
  without ever reading stale state from a previous one);
* ``SIEVE_BENCH_NO_CACHE=1`` — disable the cache entirely (every bench
  then recomputes from scratch, the pre-engine behaviour);
* ``SIEVE_BENCH_MANIFEST_DIR`` — when set, comparison benches write a
  ``BENCH_<figure>.json`` run manifest there (per-stage timings +
  accuracy rows + error attributions), plus a ``TRACE_<figure>.json``
  Chrome trace and an ``ATTRIBUTION_<figure>.json`` dump; the CI
  ``bench-regression`` job diffs the manifests against the committed
  ``benchmarks/baselines/`` copies and uploads the traces as artifacts.
"""

from __future__ import annotations

import atexit
import os
import tempfile
import time
from pathlib import Path
from typing import Callable

from repro.evaluation.engine import EngineConfig, EvaluationEngine
from repro.evaluation.reporting import comparison_row_dict
from repro.observability import manifest as obs_manifest
from repro.observability import spans as obs_spans

#: None = full Table I scale (the default used for reported results).
#: ``SIEVE_BENCH_CAP`` overrides for quick smoke runs.
_cap_env = os.environ.get("SIEVE_BENCH_CAP", "")
SCALE_CAP: int | None = int(_cap_env) if _cap_env else None

JOBS = int(os.environ.get("SIEVE_BENCH_JOBS", "1"))
NO_CACHE = os.environ.get("SIEVE_BENCH_NO_CACHE", "") not in ("", "0")

_writer: Callable[[str], None] = print
_engine: EvaluationEngine | None = None


def shared_engine() -> EvaluationEngine:
    """The evaluation engine every comparison bench routes through.

    Closed via ``atexit`` (idempotent) so shared-memory segments a bench
    publishes never outlive the pytest process.
    """
    global _engine
    if _engine is None:
        configured = os.environ.get("SIEVE_BENCH_CACHE_DIR")
        cache_dir = (
            Path(configured)
            if configured
            else Path(tempfile.mkdtemp(prefix="sieve-bench-cache-"))
        )
        _engine = EvaluationEngine(
            EngineConfig(jobs=JOBS, use_cache=not NO_CACHE, cache_dir=cache_dir)
        )
        atexit.register(_engine.close)
    return _engine


def set_writer(writer: Callable[[str], None]) -> None:
    """Install the output writer (used by conftest to bypass capture)."""
    global _writer
    _writer = writer


def emit(text: str) -> None:
    """Print harness output through the installed writer."""
    _writer(text)


def banner(title: str) -> None:
    emit("")
    emit("=" * 78)
    emit(title)
    emit("=" * 78)


def engine_summary() -> str:
    """One-line cache/jobs report for bench footers."""
    engine = shared_engine()
    stats = engine.cache_stats
    cache = stats.summary() if stats is not None else "disabled"
    return f"engine: jobs={engine.config.jobs}, cache {cache}"


def manifest_mark() -> tuple[int, int, float, float]:
    """Snapshot telemetry cursors before a bench's measured work."""
    return (
        obs_spans.mark(),
        obs_manifest.events_mark(),
        time.perf_counter(),
        time.process_time(),
    )


def write_bench_manifest(
    figure: str,
    rows,
    aggregates: dict,
    mark: tuple[int, int, float, float],
) -> Path | None:
    """Write ``BENCH_<figure>.json`` to ``SIEVE_BENCH_MANIFEST_DIR``.

    No-op (returns None) when the env var is unset, so plain bench runs
    stay artifact-free. ``rows`` are ComparisonRows; the manifest window
    is everything recorded since ``mark`` (see :func:`manifest_mark`).
    Alongside the manifest, the bench's span window is exported as a
    ``TRACE_<figure>.json`` Chrome trace and its per-kernel error
    attributions as ``ATTRIBUTION_<figure>.json``.
    """
    directory = os.environ.get("SIEVE_BENCH_MANIFEST_DIR")
    if not directory:
        return None
    import json

    from repro.evaluation.experiments import collect_attributions
    from repro.observability.export import write_chrome_trace

    since, events_since, wall_start, cpu_start = mark
    attribution = collect_attributions(rows)
    manifest = obs_manifest.collect_manifest(
        f"bench {figure}",
        config={"cap": SCALE_CAP, "jobs": JOBS},
        engine=shared_engine(),
        workloads=[comparison_row_dict(row) for row in rows],
        aggregates={key: float(value) for key, value in aggregates.items()},
        since=since,
        events_since=events_since,
        total_wall_s=time.perf_counter() - wall_start,
        total_cpu_s=time.process_time() - cpu_start,
        attribution=attribution,
    )
    path = manifest.save(Path(directory) / f"BENCH_{figure}.json")
    emit(f"manifest: {path}")
    # Record the run into the performance version store when
    # SIEVE_PERFSTORE_DIR is set (each repeat becomes one sample for the
    # statistical regression gate; failures degrade to diagnostics).
    from repro.perfstore.store import maybe_record

    maybe_record(manifest, figure=figure)
    window = obs_spans.records()[since:]
    if window:
        trace_path = write_chrome_trace(Path(directory) / f"TRACE_{figure}.json", window)
        emit(f"trace: {trace_path}")
    if attribution:
        attr_path = Path(directory) / f"ATTRIBUTION_{figure}.json"
        attr_path.write_text(json.dumps(attribution, indent=2, sort_keys=True) + "\n")
        emit(f"attribution: {attr_path}")
    return path
