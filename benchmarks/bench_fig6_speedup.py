"""Figure 6: simulation speedup for Sieve and PKS (log scale, gst excluded
from the mean)."""

from repro.evaluation.experiments import compare_methods, figure6_speedup
from repro.evaluation.reporting import format_table, times

from _common import (
    SCALE_CAP,
    banner,
    emit,
    engine_summary,
    manifest_mark,
    shared_engine,
    write_bench_manifest,
)


def test_fig6_simulation_speedup(benchmark):
    mark = manifest_mark()
    rows = benchmark.pedantic(
        compare_methods,
        kwargs={"max_invocations": SCALE_CAP, "engine": shared_engine()},
        rounds=1, iterations=1,
    )
    banner("Figure 6: simulation speedup (workload cycles / sample cycles)")
    emit(engine_summary())
    emit(format_table(
        ["workload", "sieve_speedup", "pks_speedup", "sieve_reps", "pks_reps"],
        [
            (r.workload, times(r.sieve.speedup), times(r.pks.speedup),
             r.sieve.num_representatives, r.pks.num_representatives)
            for r in rows
        ],
    ))
    aggregate = figure6_speedup(rows)
    emit(
        f"\nharmonic means (gst excluded): Sieve {times(aggregate['sieve_hmean'])}, "
        f"PKS {times(aggregate['pks_hmean'])}   (paper: 922x / 1,272x)"
    )
    gst = [r for r in rows if r.workload.endswith("/gst")][0]
    emit(
        f"gst (the paper's outlier): Sieve {times(gst.sieve.speedup)}, "
        f"PKS {times(gst.pks.speedup)} — dominant highly variable kernel"
    )
    write_bench_manifest("fig6", rows, aggregate, mark)
    # Shape: both methods land in the 100x-10,000x regime, within ~5x of
    # each other; gst collapses to ~1x. The magnitudes scale with the
    # invocation count, so the absolute bands only apply at full Table I
    # scale; capped runs (SIEVE_BENCH_CAP) keep the scale-free checks.
    if SCALE_CAP is None:
        assert 100 < aggregate["sieve_hmean"] < 20_000
        assert 0.2 < aggregate["sieve_hmean"] / aggregate["pks_hmean"] < 5
    assert aggregate["sieve_hmean"] > 1
    assert gst.sieve.speedup == min(r.sieve.speedup for r in rows)
    assert gst.sieve.speedup < 20
