"""Ablation: PKA-style two-level profiling for PKS.

The paper (Section II-B) notes PKS mitigates its profiling cost by
collecting the 12 characteristics only for a first batch and just kernel
names/grid dimensions afterwards. This bench quantifies the trade-off:
profiling-cost reduction versus accuracy impact, against full-detail PKS
and against Sieve.
"""

from repro.baselines.pks_two_level import TwoLevelPksPipeline
from repro.evaluation.context import build_context
from repro.evaluation.metrics import prediction_error
from repro.evaluation.reporting import format_table, percent, times
from repro.evaluation.runner import evaluate_pks, evaluate_sieve
from repro.profiling.two_level import TwoLevelProfiler

from _common import banner, emit

WORKLOADS = ("cactus/lmc", "cactus/spt", "mlperf/ssd-mobilenet")
DETAILED_BUDGET = 10_000


def _sweep():
    rows = []
    for label in WORKLOADS:
        context = build_context(label)
        full_pks = evaluate_pks(context)
        sieve = evaluate_sieve(context)

        profile = TwoLevelProfiler(DETAILED_BUDGET).profile(context.run)
        pipeline = TwoLevelPksPipeline()
        selection = pipeline.select(profile, context.golden)
        error = prediction_error(
            pipeline.predict(selection, context.golden).predicted_cycles,
            context.golden.total_cycles,
        )
        rows.append(
            {
                "workload": label,
                "full_pks": full_pks.error,
                "two_level": error,
                "sieve": sieve.error,
                "full_cost_days": context.pks_profiling.total_days,
                "two_level_days": profile.total_seconds / 86_400,
                "sieve_days": context.sieve_profiling.total_days,
            }
        )
    return rows


def test_ablation_two_level_profiling(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    banner(f"Ablation: two-level PKS profiling (detailed budget "
           f"{DETAILED_BUDGET:,} invocations)")
    emit(format_table(
        ["workload", "pks_err", "2level_err", "sieve_err",
         "pks_days", "2level_days", "sieve_days"],
        [
            (r["workload"], percent(r["full_pks"]), percent(r["two_level"]),
             percent(r["sieve"]), f"{r['full_cost_days']:.2f}",
             f"{r['two_level_days']:.2f}", f"{r['sieve_days']:.3f}")
            for r in rows
        ],
    ))
    for r in rows:
        speedup = r["full_cost_days"] / max(r["two_level_days"], 1e-9)
        emit(f"{r['workload']}: two-level cuts PKS profiling {times(speedup)}")
        # Two-level keeps profiling far cheaper than full detail but is
        # still costlier than Sieve's single-metric pass.
        assert r["two_level_days"] < r["full_cost_days"]
        assert r["sieve_days"] < r["two_level_days"]
