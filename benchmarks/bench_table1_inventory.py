"""Table I: workload inventory (suite, workload, #kernels, #invocations)."""

from repro.evaluation.experiments import table1_inventory
from repro.evaluation.reporting import format_table

from _common import SCALE_CAP, banner, emit


def test_table1_inventory(benchmark):
    rows = benchmark.pedantic(
        table1_inventory, args=(SCALE_CAP,), rounds=1, iterations=1
    )
    banner("Table I: workloads, kernel counts and invocation counts")
    emit(format_table(
        ["suite", "workload", "#kernels", "#invocations"],
        [(r["suite"], r["workload"], r["kernels"], f"{r['invocations']:,}")
         for r in rows],
    ))
    mismatches = [
        r for r in rows
        if SCALE_CAP is None and (
            r["kernels"] != r["paper_kernels"]
            or r["invocations"] != r["paper_invocations"]
        )
    ]
    emit(f"\nworkloads: {len(rows)}  (paper: 40)  count mismatches: {len(mismatches)}")
    assert len(rows) == 40
    assert not mismatches
