"""Figure 8: prediction error on the traditional suites (Parboil, Rodinia,
CUDA SDK) — both methods are accurate, except PKS on cfd."""

from repro.evaluation.experiments import figure3_accuracy, figure8_simple_suites
from repro.evaluation.reporting import format_table, percent

from _common import (
    SCALE_CAP,
    banner,
    emit,
    engine_summary,
    manifest_mark,
    shared_engine,
    write_bench_manifest,
)


def test_fig8_simple_suites(benchmark):
    mark = manifest_mark()
    rows = benchmark.pedantic(
        figure8_simple_suites,
        kwargs={"max_invocations": SCALE_CAP, "engine": shared_engine()},
        rounds=1, iterations=1,
    )
    banner("Figure 8: prediction error on Parboil / Rodinia / CUDA SDK")
    emit(engine_summary())
    emit(format_table(
        ["workload", "sieve_error", "pks_error"],
        [(r.workload, percent(r.sieve.error), percent(r.pks.error)) for r in rows],
    ))
    aggregate = figure3_accuracy(rows)
    emit(
        f"\nSieve: avg {percent(aggregate['sieve_avg'])}, "
        f"max {percent(aggregate['sieve_max'])}   (paper: 0.32% avg, 2.3% max)"
    )
    emit(
        f"PKS:   avg {percent(aggregate['pks_avg'])}, "
        f"max {percent(aggregate['pks_max'])}   (paper: 1.3% avg, 23% max on cfd)"
    )
    cfd = [r for r in rows if r.workload == "rodinia/cfd"][0]
    worst_pks = max(rows, key=lambda r: r.pks.error)
    emit(f"worst PKS workload: {worst_pks.workload} "
         f"({percent(worst_pks.pks.error)}); cfd: {percent(cfd.pks.error)}")
    write_bench_manifest("fig8", rows, aggregate, mark)
    # Shape: both methods accurate on the simple suites; cfd is PKS's worst.
    assert aggregate["sieve_avg"] < 0.02
    assert aggregate["pks_avg"] < 0.10
    assert cfd.pks.error == aggregate["pks_max"]
