"""Resilience study: prediction-error degradation versus fault rate.

The robustness analogue of Figure 3: instead of asking how accurate Sieve
and PKS are on clean profiles, ask how their prediction error degrades as
the profile tables and the golden reference are corrupted at increasing
rates (dropped/duplicated invocations, NaN and negated counters, zeroed
and noised cycle counts, clock drift).

Invariants enforced here, not just reported:

* at fault rate 0 both pipelines reproduce their clean-run errors
  *exactly* (fault injection is a strict identity at rate 0);
* at every rate up to 0.2 neither pipeline crashes — every degraded path
  returns a finite prediction and reports what it did through the
  diagnostics channel.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import compare_methods
from repro.robustness import diagnostics
from repro.robustness.faults import FaultPlan, FaultSpec

from _common import banner, emit

#: Two challenging workloads keep the rate sweep tractable.
LABELS = ["cactus/lmc", "cactus/gru"]
CAP = 12_000
RATES = (0.0, 0.05, 0.1, 0.2)
MODES = (
    "drop", "duplicate", "nan", "negative",
    "zero_cycles", "cycle_noise", "clock_drift",
)


def fault_plan(rate: float, seed: int = 0) -> FaultPlan:
    """All fault modes composed at one rate."""
    return FaultPlan(
        specs=tuple(FaultSpec(mode=mode, rate=rate) for mode in MODES),
        seed=seed,
    )


def resilience_sweep() -> list[dict]:
    baseline = compare_methods(LABELS, max_invocations=CAP)
    rows = []
    for rate in RATES:
        with diagnostics.capture_diagnostics() as caught:
            results = compare_methods(
                LABELS, max_invocations=CAP, fault_plan=fault_plan(rate)
            )
        for clean, faulted in zip(baseline, results):
            assert np.isfinite(faulted.sieve.predicted_cycles)
            assert np.isfinite(faulted.pks.predicted_cycles)
            assert np.isfinite(faulted.sieve.error)
            assert np.isfinite(faulted.pks.error)
            if rate == 0.0:
                # Rate-0 injection is an identity: errors match exactly.
                assert faulted.sieve.error == clean.sieve.error
                assert faulted.pks.error == clean.pks.error
        rows.append(
            {
                "rate": rate,
                "sieve_avg_error": float(np.mean([r.sieve.error for r in results])),
                "pks_avg_error": float(np.mean([r.pks.error for r in results])),
                "sieve_reps": int(np.mean(
                    [r.sieve.num_representatives for r in results]
                )),
                "diagnostics": len(caught),
            }
        )
    return rows


def test_resilience_degradation(benchmark):
    rows = benchmark.pedantic(resilience_sweep, rounds=1, iterations=1)
    banner(
        "Resilience: Sieve vs PKS prediction error vs fault rate "
        f"(modes: {', '.join(MODES)}; workloads: {', '.join(LABELS)})"
    )
    emit(f"{'rate':>6} {'sieve_err':>10} {'pks_err':>10} "
         f"{'sieve_reps':>10} {'diags':>6}")
    for row in rows:
        emit(
            f"{row['rate']:>6.2f} {row['sieve_avg_error']:>9.2%} "
            f"{row['pks_avg_error']:>9.2%} {row['sieve_reps']:>10d} "
            f"{row['diagnostics']:>6d}"
        )
    # Shape: even at 20% composite corruption the degraded paths keep the
    # predictions in a sane range rather than exploding or zeroing out.
    assert all(r["sieve_avg_error"] < 1.0 for r in rows)
    # Heavier corruption must surface in the diagnostics channel.
    assert rows[-1]["diagnostics"] >= 1
