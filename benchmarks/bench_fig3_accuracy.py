"""Figure 3: prediction error for Sieve and PKS on Cactus + MLPerf.

Runs through the declarative :class:`ExperimentSpec` path: the bench
builds the fig3 comparison spec, executes it with ``run_experiment``
through the shared engine, and first sanity-checks that engine cache
keys separate by method *and* by method config (a theta=0.2 Sieve task
must never collide with a theta=0.4 one, nor with a PKS task).
"""

from repro.core.config import SieveConfig
from repro.evaluation.engine import EvaluationTask
from repro.evaluation.experiments import (
    ComparisonRow,
    comparison_spec,
    figure3_accuracy,
    run_experiment,
)
from repro.evaluation.reporting import format_table, percent
from repro.methods import MethodRequest
from repro.workloads.catalog import CHALLENGING_SUITES, specs_for_suites

from _common import (
    SCALE_CAP,
    banner,
    emit,
    engine_summary,
    manifest_mark,
    shared_engine,
    write_bench_manifest,
)


def _fig3_spec():
    labels = tuple(spec.label for spec in specs_for_suites(CHALLENGING_SUITES))
    return comparison_spec("fig3", labels, max_invocations=SCALE_CAP)


def _run_fig3():
    rows = run_experiment(_fig3_spec(), shared_engine())
    return [ComparisonRow(row.workload, row["sieve"], row["pks"]) for row in rows]


def _assert_cache_keys_separate():
    """Different method or different config must mean a different key."""
    keys = {
        EvaluationTask(
            label="cactus/gru",
            max_invocations=SCALE_CAP,
            methods=(MethodRequest("sieve", SieveConfig(theta=theta)),),
        ).cache_key()
        for theta in (0.2, 0.4)
    }
    keys.add(
        EvaluationTask(
            label="cactus/gru", max_invocations=SCALE_CAP, methods=("pks",)
        ).cache_key()
    )
    assert len(keys) == 3, "cache keys must differ per method + config"


def test_fig3_prediction_error(benchmark):
    _assert_cache_keys_separate()
    mark = manifest_mark()
    rows = benchmark.pedantic(_run_fig3, rounds=1, iterations=1)
    banner("Figure 3: prediction error, Sieve vs PKS (Cactus + MLPerf)")
    emit(engine_summary())
    emit(format_table(
        ["workload", "sieve_error", "pks_error", "sieve_reps", "pks_k"],
        [
            (r.workload, percent(r.sieve.error), percent(r.pks.error),
             r.sieve.num_representatives,
             getattr(r.pks.selection, "chosen_k", 0))
            for r in rows
        ],
    ))
    aggregate = figure3_accuracy(rows)
    emit(
        f"\nSieve: avg {percent(aggregate['sieve_avg'])}, "
        f"max {percent(aggregate['sieve_max'])}   (paper: 1.2% avg, 3.2% max)"
    )
    emit(
        f"PKS:   avg {percent(aggregate['pks_avg'])}, "
        f"max {percent(aggregate['pks_max'])}   (paper: 16.5% avg, 60.4% max)"
    )
    write_bench_manifest("fig3", rows, aggregate, mark)
    # Shape: Sieve is substantially more accurate than PKS.
    assert aggregate["sieve_avg"] < 0.05
    assert aggregate["pks_avg"] > 3 * aggregate["sieve_avg"]
    assert aggregate["pks_max"] > 0.10
