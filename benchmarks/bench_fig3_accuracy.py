"""Figure 3: prediction error for Sieve and PKS on Cactus + MLPerf."""

from repro.evaluation.experiments import compare_methods, figure3_accuracy
from repro.evaluation.reporting import format_table, percent

from _common import (
    SCALE_CAP,
    banner,
    emit,
    engine_summary,
    manifest_mark,
    shared_engine,
    write_bench_manifest,
)


def test_fig3_prediction_error(benchmark):
    mark = manifest_mark()
    rows = benchmark.pedantic(
        compare_methods,
        kwargs={"max_invocations": SCALE_CAP, "engine": shared_engine()},
        rounds=1, iterations=1,
    )
    banner("Figure 3: prediction error, Sieve vs PKS (Cactus + MLPerf)")
    emit(engine_summary())
    emit(format_table(
        ["workload", "sieve_error", "pks_error", "sieve_reps", "pks_k"],
        [
            (r.workload, percent(r.sieve.error), percent(r.pks.error),
             r.sieve.num_representatives,
             getattr(r.pks.selection, "chosen_k", 0))
            for r in rows
        ],
    ))
    aggregate = figure3_accuracy(rows)
    emit(
        f"\nSieve: avg {percent(aggregate['sieve_avg'])}, "
        f"max {percent(aggregate['sieve_max'])}   (paper: 1.2% avg, 3.2% max)"
    )
    emit(
        f"PKS:   avg {percent(aggregate['pks_avg'])}, "
        f"max {percent(aggregate['pks_max'])}   (paper: 16.5% avg, 60.4% max)"
    )
    write_bench_manifest("fig3", rows, aggregate, mark)
    # Shape: Sieve is substantially more accurate than PKS.
    assert aggregate["sieve_avg"] < 0.05
    assert aggregate["pks_avg"] > 3 * aggregate["sieve_avg"]
    assert aggregate["pks_max"] > 0.10
