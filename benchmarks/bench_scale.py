"""Scale bench: cap=100k vectorization speedup + shared-memory round trip.

Thin pytest-benchmark wrapper around :mod:`scripts.scale_smoke` — the
same fixture, timings, equivalence checks and ``BENCH_scale.json``
manifest, so ``pytest benchmarks/ --benchmark-only`` and the CI
``scale-bench`` job measure one code path. The bench asserts the same
>=5x vectorized-path floor the script gates on.
"""

import sys
from pathlib import Path

from _common import banner, emit, manifest_mark

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

import scale_smoke  # noqa: E402  (needs the scripts/ dir on sys.path)


def test_scale_vectorized_path(benchmark):
    mark = manifest_mark()
    report = benchmark.pedantic(
        lambda: scale_smoke.run_scale(), rounds=1, iterations=1
    )
    scale_smoke.run_shm_round_trip(report)
    banner("Scale: vectorized vs scalar path at cap=100k")
    for stage in scale_smoke.PATH_STAGES:
        emit(f"{stage:<10} {report.scalar[stage]:>9.4f}s scalar  "
             f"{report.vectorized[stage]:>9.4f}s vectorized  "
             f"{report.speedup(stage):>6.2f}x")
    emit(f"path speedup: {report.path_speedup:.2f}x "
         f"(gate: >={scale_smoke.DEFAULT_MIN_SPEEDUP:.0f}x)")
    emit(f"shm counters: {report.shm_counters}")
    path = scale_smoke.write_manifest(report, mark)
    if path:
        emit(f"manifest: {path}")
    assert report.path_speedup >= scale_smoke.DEFAULT_MIN_SPEEDUP
    assert report.shm_counters["unlinked"] == 1
