"""Ablation: KDE stratification versus kernel-name-only stratification.

Sieve's Tier-3 KDE splitting is what keeps within-stratum variability
bounded. Disabling it (theta = 50, i.e. one stratum per kernel regardless
of instruction-count variability) shows how much accuracy the instruction-
count characteristic itself buys — the paper's claim that "the only
critical execution characteristic to profile is instruction count".
"""

import numpy as np

from repro.core.config import SieveConfig
from repro.evaluation.context import build_context
from repro.evaluation.reporting import format_table, percent
from repro.evaluation.runner import evaluate_sieve

from _common import banner, emit

WORKLOADS = ("cactus/spt", "cactus/dcg", "mlperf/rnnt", "cactus/gst")


def _sweep():
    rows = []
    for label in WORKLOADS:
        context = build_context(label)
        full = evaluate_sieve(context, SieveConfig(theta=0.4))
        kernel_only = evaluate_sieve(context, SieveConfig(theta=50.0))
        rows.append(
            {
                "workload": label,
                "sieve": full.error,
                "kernel_only": kernel_only.error,
                "sieve_reps": full.num_representatives,
                "kernel_only_reps": kernel_only.num_representatives,
            }
        )
    return rows


def test_ablation_kde_stratification(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    banner("Ablation: KDE stratification vs one-stratum-per-kernel")
    emit(format_table(
        ["workload", "sieve(θ=0.4)", "kernel-only", "reps", "kernel-only reps"],
        [
            (r["workload"], percent(r["sieve"]), percent(r["kernel_only"]),
             r["sieve_reps"], r["kernel_only_reps"])
            for r in rows
        ],
    ))
    sieve_avg = float(np.mean([r["sieve"] for r in rows]))
    ablated_avg = float(np.mean([r["kernel_only"] for r in rows]))
    emit(f"\navg error: full Sieve {percent(sieve_avg)}, "
         f"kernel-name-only {percent(ablated_avg)}")
    # Instruction-count stratification must matter on Tier-3-heavy
    # workloads.
    assert ablated_avg > sieve_avg
    assert all(r["sieve_reps"] >= r["kernel_only_reps"] for r in rows)
