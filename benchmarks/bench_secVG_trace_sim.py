"""Section V-G: trace-driven simulation of the selected invocations.

Regenerates (1) the serial/parallel simulation-time estimates at the
paper's ~6 KIPS Accel-sim rate and (2) an actual cycle-level simulation of
a handful of representative traces through the bundled simulator.
"""

from repro.core.pipeline import SievePipeline
from repro.evaluation.context import build_context
from repro.evaluation.reporting import format_table
from repro.trace.simtime import estimate_simulation_time
from repro.trace.simulator import SimulatorConfig, TraceSimulator
from repro.trace.tracer import SelectionTracer, TracerConfig

from _common import banner, emit

#: A representative subset — one short and one long Cactus workload plus
#: one MLPerf workload (full-scale selections; scaled traces).
WORKLOADS = ("cactus/gru", "cactus/spt", "mlperf/ssd-resnet34")


def _simulation_estimates():
    rows = []
    for label in WORKLOADS:
        context = build_context(label)
        selection = SievePipeline().select(context.sieve_table)
        estimate = estimate_simulation_time(selection, context.golden)
        rows.append(estimate)
    return rows


def test_secVG_simulation_time_estimates(benchmark):
    estimates = benchmark.pedantic(_simulation_estimates, rounds=1, iterations=1)
    banner("Section V-G: simulation time of the selected invocations @ 6 KIPS")
    emit(format_table(
        ["workload", "traces", "total_insn", "serial_days", "parallel_hours"],
        [
            (e.workload, e.num_traces, f"{e.total_instructions:.2e}",
             f"{e.serial_days:.2f}", f"{e.parallel_hours:.2f}")
            for e in estimates
        ],
    ))
    emit("\npaper: serial < 2 days per workload (~1 B instructions average "
         "per trace); parallel < 1 hour for most Cactus workloads")
    for estimate in estimates:
        assert estimate.parallel_seconds < estimate.serial_seconds


def _simulate_traces():
    context = build_context("cactus/gru")
    selection = SievePipeline().select(context.sieve_table)
    tracer = SelectionTracer(TracerConfig(max_warps=16, max_warp_instructions=512))
    simulator = TraceSimulator(SimulatorConfig(num_sms=2))
    results = []
    for rep in selection.representatives[:4]:
        trace = tracer.trace_invocation(context.run, rep.kernel_name,
                                        rep.invocation_id)
        results.append(simulator.simulate(trace))
    return results


def test_secVG_cycle_level_simulation(benchmark):
    results = benchmark.pedantic(_simulate_traces, rounds=1, iterations=1)
    banner("Section V-G: cycle-level simulation of representative traces")
    emit(format_table(
        ["kernel", "invocation", "cycles", "warp_insns", "ipc",
         "l1_hit", "dram_reqs"],
        [
            (r.kernel_name, r.invocation_id, r.cycles, r.warp_instructions,
             f"{r.ipc:.1f}", f"{r.l1_hit_rate:.2f}", r.dram_requests)
            for r in results
        ],
    ))
    for result in results:
        assert result.cycles > 0
        assert result.ipc > 0
