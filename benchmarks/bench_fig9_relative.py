"""Figure 9: relative (Ampere vs Turing) performance prediction."""

import numpy as np

from repro.evaluation.experiments import figure9_relative
from repro.evaluation.reporting import format_table, percent

from _common import SCALE_CAP, banner, emit


def test_fig9_relative_accuracy(benchmark):
    rows = benchmark.pedantic(
        figure9_relative, kwargs={"max_invocations": SCALE_CAP},
        rounds=1, iterations=1,
    )
    banner("Figure 9: Ampere-vs-Turing speedup — hardware vs Sieve vs PKS "
           "(Cactus minus rfl; MLPerf excluded, as in the paper)")
    emit(format_table(
        ["workload", "hardware", "sieve", "pks", "sieve_err", "pks_err"],
        [
            (r["workload"], f"{r['hardware']:.3f}", f"{r['sieve']:.3f}",
             f"{r['pks']:.3f}", percent(r["sieve_error"]), percent(r["pks_error"]))
            for r in rows
        ],
    ))
    sieve_avg = float(np.mean([r["sieve_error"] for r in rows]))
    pks_avg = float(np.mean([r["pks_error"] for r in rows]))
    emit(f"\nSieve avg relative error: {percent(sieve_avg)}   (paper: 1.5%)")
    emit(f"PKS   avg relative error: {percent(pks_avg)}   (paper: 9.8%)")

    by_name = {r["workload"].split("/")[1]: r for r in rows}
    slower_on_ampere = [n for n, r in by_name.items() if r["hardware"] < 1.0]
    emit(f"workloads slower on Ampere (paper: lmc, lmr): {sorted(slower_on_ampere)}")

    # Shape: Sieve tracks hardware ranking; PKS misleads on some workloads.
    assert sieve_avg < 0.05
    assert pks_avg > 2 * sieve_avg
    assert "lmc" in slower_on_ampere or "lmr" in slower_on_ampere
    # Sieve never flips the ranking direction.
    for r in rows:
        if abs(r["hardware"] - 1.0) > 0.05:
            assert (r["sieve"] > 1.0) == (r["hardware"] > 1.0)
