"""Ablation: classical sampling baselines vs Sieve.

Random and periodic invocation sampling (the CPU-style baselines) at a
matched sample budget, versus Sieve's stratified selection.
"""

import numpy as np

from repro.baselines.periodic import PeriodicSampler
from repro.baselines.random_sampling import RandomSampler
from repro.evaluation.context import build_context
from repro.evaluation.metrics import prediction_error
from repro.evaluation.reporting import format_table, percent
from repro.evaluation.runner import evaluate_sieve

from _common import banner, emit

WORKLOADS = ("cactus/spt", "cactus/lmc", "mlperf/rnnt")


def _sweep():
    rows = []
    for label in WORKLOADS:
        context = build_context(label)
        sieve = evaluate_sieve(context)
        budget = sieve.num_representatives
        table = context.sieve_table

        random_sampler = RandomSampler(sample_size=budget)
        random_error = prediction_error(
            random_sampler.predict(
                random_sampler.select(table), context.golden
            ).predicted_cycles,
            context.golden.total_cycles,
        )
        periodic = PeriodicSampler(period=max(len(table) // budget, 1))
        periodic_error = prediction_error(
            periodic.predict(periodic.select(table), context.golden).predicted_cycles,
            context.golden.total_cycles,
        )
        rows.append(
            {
                "workload": label,
                "budget": budget,
                "sieve": sieve.error,
                "random": random_error,
                "periodic": periodic_error,
            }
        )
    return rows


def test_ablation_classical_baselines(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    banner("Ablation: random / periodic sampling vs Sieve at equal budget")
    emit(format_table(
        ["workload", "budget", "sieve", "random", "periodic"],
        [
            (r["workload"], r["budget"], percent(r["sieve"]),
             percent(r["random"]), percent(r["periodic"]))
            for r in rows
        ],
    ))
    sieve_avg = float(np.mean([r["sieve"] for r in rows]))
    random_avg = float(np.mean([r["random"] for r in rows]))
    emit(f"\navg: sieve {percent(sieve_avg)}, random {percent(random_avg)}")
    # Stratification beats unstratified sampling at the same budget on
    # ramped heavy-tailed workloads.
    assert sieve_avg < random_avg
