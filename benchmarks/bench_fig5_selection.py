"""Figure 5: PKS representative-selection policies vs Sieve."""

import numpy as np

from repro.evaluation.experiments import figure5_selection_policies
from repro.evaluation.reporting import format_table, percent

from _common import SCALE_CAP, banner, emit


def test_fig5_selection_policies(benchmark):
    rows = benchmark.pedantic(
        figure5_selection_policies, kwargs={"max_invocations": SCALE_CAP},
        rounds=1, iterations=1,
    )
    banner("Figure 5: PKS selection policies (first/random/centroid) vs Sieve")
    emit(format_table(
        ["workload", "pks_first", "pks_random", "pks_centroid", "sieve"],
        [
            (r["workload"], percent(r["pks_first"]), percent(r["pks_random"]),
             percent(r["pks_centroid"]), percent(r["sieve"]))
            for r in rows
        ],
    ))
    averages = {
        key: float(np.mean([r[key] for r in rows]))
        for key in ("pks_first", "pks_random", "pks_centroid", "sieve")
    }
    emit(
        f"\naverages: first {percent(averages['pks_first'])}, "
        f"random {percent(averages['pks_random'])}, "
        f"centroid {percent(averages['pks_centroid'])}, "
        f"sieve {percent(averages['sieve'])}"
    )
    emit("paper:    first 16.5%, random 6.8%, centroid 3.9%, sieve 1.2%")
    # Shape: better selection helps PKS but does not close the gap to Sieve.
    assert averages["pks_centroid"] < averages["pks_first"]
    assert averages["sieve"] < averages["pks_centroid"]
